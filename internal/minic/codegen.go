package minic

import (
	"encoding/binary"
	"fmt"
	"math"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
)

// Compile parses and compiles a minic translation unit to an IR module,
// runs the standard optimization pipeline (SSA promotion, constant
// folding, DCE), and verifies the result.
func Compile(name, src string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		mod:     ir.NewModule(name),
		structs: make(map[string]*ir.Type),
		fields:  make(map[string]map[string]int),
		strLits: make(map[string]*ir.Global),
	}
	if err := c.compileFile(file); err != nil {
		return nil, err
	}
	ir.Optimize(c.mod)
	if err := c.mod.Verify(); err != nil {
		return nil, fmt.Errorf("internal error: generated IR invalid: %w", err)
	}
	return c.mod, nil
}

// CompileUnoptimized is Compile without the optimization pipeline; used by
// ablation benchmarks and tests.
func CompileUnoptimized(name, src string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		mod:     ir.NewModule(name),
		structs: make(map[string]*ir.Type),
		fields:  make(map[string]map[string]int),
		strLits: make(map[string]*ir.Global),
	}
	if err := c.compileFile(file); err != nil {
		return nil, err
	}
	for _, f := range c.mod.Funcs {
		ir.RemoveUnreachable(f)
	}
	if err := c.mod.Verify(); err != nil {
		return nil, fmt.Errorf("internal error: generated IR invalid: %w", err)
	}
	return c.mod, nil
}

type compiler struct {
	mod     *ir.Module
	structs map[string]*ir.Type
	fields  map[string]map[string]int
	strLits map[string]*ir.Global

	// Per-function state.
	fn      *ir.Function
	b       *ir.Builder
	entry   *ir.Block
	scopes  []map[string]*binding
	breaks  []*ir.Block
	conts   []*ir.Block
	blockID int
}

// binding is a named slot: a pointer value of type *Ty.
type binding struct {
	ptr ir.Value
	ty  *ir.Type
}

func (c *compiler) compileFile(f *File) error {
	for _, sd := range f.Structs {
		if err := c.declareStruct(sd); err != nil {
			return err
		}
	}
	for _, g := range f.Globals {
		if err := c.declareGlobal(g); err != nil {
			return err
		}
	}
	// Declare all signatures first so forward calls resolve.
	for _, fd := range f.Funcs {
		if err := c.declareFunc(fd); err != nil {
			return err
		}
	}
	for _, fd := range f.Funcs {
		if fd.Body == nil {
			continue
		}
		if err := c.compileFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) declareStruct(sd *StructDecl) error {
	if _, exists := c.structs[sd.Tag]; exists {
		return errAt(sd.Tok.Line, sd.Tok.Col, "struct %s redeclared", sd.Tag)
	}
	// Register a shell first so self-referential pointer fields resolve.
	st := &ir.Type{Kind: ir.KindStruct, TagName: sd.Tag}
	c.structs[sd.Tag] = st
	idx := make(map[string]int, len(sd.Fields))
	for i, fd := range sd.Fields {
		ft, err := c.resolveType(fd.Type)
		if err != nil {
			return err
		}
		if ft.Kind == ir.KindVoid {
			return errAt(fd.Tok.Line, fd.Tok.Col, "field %s has void type", fd.Name)
		}
		if _, dup := idx[fd.Name]; dup {
			return errAt(fd.Tok.Line, fd.Tok.Col, "duplicate field %s", fd.Name)
		}
		st.Fields = append(st.Fields, ft)
		idx[fd.Name] = i
	}
	c.fields[sd.Tag] = idx
	return nil
}

// resolveType lowers a syntactic type. Stars bind to the base; Dims wrap
// outside (so "int *a[3]" is an array of three int pointers).
func (c *compiler) resolveType(te *TypeExpr) (*ir.Type, error) {
	var base *ir.Type
	if te.IsStruct {
		st, ok := c.structs[te.Base]
		if !ok {
			return nil, errAt(te.Tok.Line, te.Tok.Col, "unknown struct %s", te.Base)
		}
		base = st
	} else {
		switch te.Base {
		case "void":
			base = ir.Void
		case "char":
			base = ir.I8
		case "int":
			base = ir.I32
		case "long":
			base = ir.I64
		case "double":
			base = ir.F64
		default:
			return nil, errAt(te.Tok.Line, te.Tok.Col, "unknown type %s", te.Base)
		}
	}
	for i := 0; i < te.Stars; i++ {
		base = ir.PointerTo(base)
	}
	for i := len(te.Dims) - 1; i >= 0; i-- {
		if base.Kind == ir.KindVoid {
			return nil, errAt(te.Tok.Line, te.Tok.Col, "array of void")
		}
		base = ir.ArrayOf(te.Dims[i], base)
	}
	return base, nil
}

func (c *compiler) declareGlobal(vd *VarDecl) error {
	ty, err := c.resolveType(vd.Type)
	if err != nil {
		return err
	}
	if ty.Kind == ir.KindVoid {
		return errAt(vd.Tok.Line, vd.Tok.Col, "variable %s has void type", vd.Name)
	}
	if c.mod.Global(vd.Name) != nil {
		return errAt(vd.Tok.Line, vd.Tok.Col, "global %s redeclared", vd.Name)
	}
	img := make([]byte, ty.Size())
	switch {
	case vd.HasStr:
		if ty.Kind != ir.KindArray || ty.Elem != ir.I8 {
			return errAt(vd.Tok.Line, vd.Tok.Col, "string initializer on non-char-array")
		}
		if len(vd.InitStr)+1 > ty.Len {
			return errAt(vd.Tok.Line, vd.Tok.Col, "string initializer too long")
		}
		copy(img, vd.InitStr)
	case vd.InitList != nil:
		if ty.Kind != ir.KindArray {
			return errAt(vd.Tok.Line, vd.Tok.Col, "brace initializer on non-array")
		}
		if len(vd.InitList) > ty.Len {
			return errAt(vd.Tok.Line, vd.Tok.Col, "too many initializers")
		}
		esz := ty.Elem.Size()
		for i, e := range vd.InitList {
			cv, err := c.constValue(e, ty.Elem)
			if err != nil {
				return err
			}
			putScalar(img[uint64(i)*esz:], cv, ty.Elem)
		}
	case vd.Init != nil:
		if ty.Kind == ir.KindArray || ty.Kind == ir.KindStruct {
			return errAt(vd.Tok.Line, vd.Tok.Col, "scalar initializer on aggregate %s", ty)
		}
		cv, err := c.constValue(vd.Init, ty)
		if err != nil {
			return err
		}
		putScalar(img, cv, ty)
	}
	c.mod.AddGlobal(&ir.Global{Name: vd.Name, Elem: ty, Init: img})
	return nil
}

// constValue evaluates a constant initializer expression, converted to ty.
func (c *compiler) constValue(e Expr, ty *ir.Type) (uint64, error) {
	switch x := e.(type) {
	case *IntLit:
		if ty.IsFloat() {
			return math.Float64bits(float64(x.Val)), nil
		}
		return ir.Canonical(uint64(x.Val), ty), nil
	case *FloatLit:
		if ty.IsFloat() {
			return math.Float64bits(x.Val), nil
		}
		return ir.Canonical(uint64(int64(x.Val)), ty), nil
	case *Unary:
		if x.Op == "-" {
			v, err := c.constValue(x.X, ty)
			if err != nil {
				return 0, err
			}
			if ty.IsFloat() {
				return math.Float64bits(-math.Float64frombits(v)), nil
			}
			return ir.Canonical(-v, ty), nil
		}
	}
	return 0, errAt(pos(e).Line, pos(e).Col, "initializer must be a literal constant")
}

func putScalar(dst []byte, v uint64, ty *ir.Type) {
	switch ty.Size() {
	case 1:
		dst[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(dst, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(dst, uint32(v))
	default:
		binary.LittleEndian.PutUint64(dst, v)
	}
}

func (c *compiler) declareFunc(fd *FuncDecl) error {
	ret, err := c.resolveType(fd.Ret)
	if err != nil {
		return err
	}
	params := make([]*ir.Type, len(fd.Params))
	for i, pd := range fd.Params {
		pt, err := c.resolveType(pd.Type)
		if err != nil {
			return err
		}
		if pt.Kind == ir.KindVoid || pt.Kind == ir.KindArray || pt.Kind == ir.KindStruct {
			return errAt(pd.Tok.Line, pd.Tok.Col, "parameter %s: unsupported type %s (pass a pointer)", pd.Name, pt)
		}
		params[i] = pt
	}
	if existing := c.mod.Func(fd.Name); existing != nil {
		if !existing.Sig.Equal(ir.FuncType(ret, params...)) {
			return errAt(fd.Tok.Line, fd.Tok.Col, "conflicting declaration of %s", fd.Name)
		}
		return nil
	}
	if _, isBuiltin := interp.Builtins[fd.Name]; isBuiltin && fd.Body != nil {
		return errAt(fd.Tok.Line, fd.Tok.Col, "%s is a runtime builtin and cannot be redefined", fd.Name)
	}
	fn := c.mod.NewFunc(fd.Name, ir.FuncType(ret, params...))
	for i, pd := range fd.Params {
		fn.Params[i].Name = pd.Name
	}
	return nil
}

func (c *compiler) compileFunc(fd *FuncDecl) error {
	fn := c.mod.Func(fd.Name)
	c.fn = fn
	c.blockID = 0
	c.scopes = []map[string]*binding{make(map[string]*binding)}
	c.breaks, c.conts = nil, nil

	c.entry = fn.NewBlock("entry")
	c.b = ir.NewBuilder(c.entry)

	// C parameter semantics: each parameter gets a slot; mem2reg promotes.
	for i, pd := range fd.Params {
		slot := c.b.Alloca(fn.Sig.Params[i])
		c.b.Store(fn.Params[i], slot)
		c.scopes[0][pd.Name] = &binding{ptr: slot, ty: fn.Sig.Params[i]}
	}

	if err := c.stmt(fd.Body); err != nil {
		return err
	}
	// Implicit return if control can fall off the end.
	if c.b.Block().Terminator() == nil {
		ret := fn.Sig.Return
		if ret.Kind == ir.KindVoid {
			c.b.Ret(nil)
		} else {
			c.b.Ret(zeroOf(ret))
		}
	}
	return nil
}

func zeroOf(ty *ir.Type) ir.Value {
	switch ty.Kind {
	case ir.KindFloat:
		return ir.ConstFloat(0)
	case ir.KindPtr:
		return ir.ConstNull(ty)
	default:
		return ir.ConstInt(ty, 0)
	}
}

func (c *compiler) newBlock(hint string) *ir.Block {
	c.blockID++
	return c.fn.NewBlock(hint)
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, make(map[string]*binding)) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) lookup(name string) *binding {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if b, ok := c.scopes[i][name]; ok {
			return b
		}
	}
	if g := c.mod.Global(name); g != nil {
		return &binding{ptr: g, ty: g.Elem}
	}
	return nil
}

func pos(e Expr) Token {
	switch x := e.(type) {
	case *IntLit:
		return x.Tok
	case *FloatLit:
		return x.Tok
	case *StrLit:
		return x.Tok
	case *Ident:
		return x.Tok
	case *Unary:
		return x.Tok
	case *Postfix:
		return x.Tok
	case *Binary:
		return x.Tok
	case *Assign:
		return x.Tok
	case *Cond:
		return x.Tok
	case *Call:
		return x.Tok
	case *Index:
		return x.Tok
	case *Member:
		return x.Tok
	case *CastExpr:
		return x.Tok
	case *SizeofExpr:
		return x.Tok
	default:
		return Token{}
	}
}

func (c *compiler) errf(e Expr, format string, args ...interface{}) error {
	t := pos(e)
	return errAt(t.Line, t.Col, format, args...)
}

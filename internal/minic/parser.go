package minic

import "fmt"

// Parser builds an AST from a token stream via recursive descent with
// precedence climbing for binary operators.
type Parser struct {
	toks []Token
	pos  int
	// struct tags seen so far; needed to disambiguate casts.
	structTags map[string]bool
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, structTags: make(map[string]bool)}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekIs(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.peekIs(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, errAt(t.Line, t.Col, "expected %q, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for !p.peekIs(TokEOF, "") {
		// struct declaration?
		if p.peekIs(TokKeyword, "struct") && p.toks[p.pos+1].Kind == TokIdent &&
			p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
			sd, err := p.parseStructDecl()
			if err != nil {
				return nil, err
			}
			f.Structs = append(f.Structs, sd)
			continue
		}
		ty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		stars := 0
		for p.accept(TokPunct, "*") {
			stars++
		}
		nameTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if p.peekIs(TokPunct, "(") {
			fd, err := p.parseFuncRest(ty, stars, nameTok)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fd)
			continue
		}
		decls, err := p.parseVarRest(ty, stars, nameTok)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, decls...)
	}
	return f, nil
}

func (p *Parser) parseStructDecl() (*StructDecl, error) {
	tok, _ := p.expect(TokKeyword, "struct")
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	p.structTags[nameTok.Text] = true
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Tok: tok, Tag: nameTok.Text}
	for !p.accept(TokPunct, "}") {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		for {
			fieldTy := *base // copy
			for p.accept(TokPunct, "*") {
				fieldTy.Stars++
			}
			fnTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			dims, err := p.parseDims()
			if err != nil {
				return nil, err
			}
			fieldTy.Dims = dims
			ft := fieldTy
			sd.Fields = append(sd.Fields, &FieldDecl{Tok: fnTok, Name: fnTok.Text, Type: &ft})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseBaseType parses a base type name (no stars/dims).
func (p *Parser) parseBaseType() (*TypeExpr, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, errAt(t.Line, t.Col, "expected type, found %s", t)
	}
	switch t.Text {
	case "void", "char", "int", "long", "double":
		p.pos++
		return &TypeExpr{Tok: t, Base: t.Text}, nil
	case "unsigned":
		return nil, errAt(t.Line, t.Col, "unsigned types are not supported")
	case "struct":
		p.pos++
		nameTok, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		return &TypeExpr{Tok: t, Base: nameTok.Text, IsStruct: true}, nil
	default:
		return nil, errAt(t.Line, t.Col, "expected type, found %s", t)
	}
}

func (p *Parser) parseDims() ([]int, error) {
	var dims []int
	for p.accept(TokPunct, "[") {
		szTok, err := p.expect(TokIntLit, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		if szTok.Int <= 0 {
			return nil, errAt(szTok.Line, szTok.Col, "array dimension must be positive")
		}
		dims = append(dims, int(szTok.Int))
	}
	return dims, nil
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "int", "long", "double", "struct":
		return true
	}
	return false
}

func (p *Parser) parseFuncRest(ret *TypeExpr, stars int, nameTok Token) (*FuncDecl, error) {
	rt := *ret
	rt.Stars += stars
	fd := &FuncDecl{Tok: nameTok, Name: nameTok.Text, Ret: &rt}
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	if !p.accept(TokPunct, ")") {
		// Allow (void).
		if p.peekIs(TokKeyword, "void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos += 2
		} else {
			for {
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				pt := *base
				for p.accept(TokPunct, "*") {
					pt.Stars++
				}
				pnTok, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				// T name[] decays to T*.
				if p.accept(TokPunct, "[") {
					if _, err := p.expect(TokPunct, "]"); err != nil {
						return nil, err
					}
					pt.Stars++
				}
				pcopy := pt
				fd.Params = append(fd.Params, &ParamDecl{Tok: pnTok, Name: pnTok.Text, Type: &pcopy})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(TokPunct, ";") {
		return fd, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// parseVarRest parses the remainder of a variable declaration list whose
// first declarator's stars and name were already consumed.
func (p *Parser) parseVarRest(base *TypeExpr, stars int, nameTok Token) ([]*VarDecl, error) {
	var decls []*VarDecl
	first := true
	curStars, curName := stars, nameTok
	for {
		if !first {
			curStars = 0
			for p.accept(TokPunct, "*") {
				curStars++
			}
			nt, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			curName = nt
		}
		first = false
		ty := *base
		ty.Stars = curStars
		dims, err := p.parseDims()
		if err != nil {
			return nil, err
		}
		ty.Dims = dims
		tcopy := ty
		vd := &VarDecl{Tok: curName, Name: curName.Text, Type: &tcopy}
		if p.accept(TokPunct, "=") {
			if p.peekIs(TokPunct, "{") {
				p.pos++
				for !p.accept(TokPunct, "}") {
					e, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					vd.InitList = append(vd.InitList, e)
					if !p.accept(TokPunct, ",") {
						if _, err := p.expect(TokPunct, "}"); err != nil {
							return nil, err
						}
						break
					}
				}
			} else if p.peekIs(TokStrLit, "") {
				st := p.next()
				vd.InitStr = st.Str
				vd.HasStr = true
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				vd.Init = e
			}
		}
		decls = append(decls, vd)
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return decls, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	tok, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Tok: tok}
	for !p.accept(TokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Items = append(b.Items, s)
	}
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.peekIs(TokPunct, "{"):
		return p.parseBlock()
	case p.isTypeStart():
		return p.parseDeclStmt()
	case p.peekIs(TokKeyword, "if"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Tok: t, Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case p.peekIs(TokKeyword, "while"):
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Tok: t, Cond: cond, Body: body}, nil
	case p.peekIs(TokKeyword, "do"):
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Tok: t, Cond: cond, Body: body, DoWhile: true}, nil
	case p.peekIs(TokKeyword, "for"):
		return p.parseFor()
	case p.peekIs(TokKeyword, "return"):
		p.pos++
		st := &ReturnStmt{Tok: t}
		if !p.peekIs(TokPunct, ";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return st, nil
	case p.peekIs(TokKeyword, "break"):
		p.pos++
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Tok: t}, nil
	case p.peekIs(TokKeyword, "continue"):
		p.pos++
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Tok: t}, nil
	case p.peekIs(TokPunct, ";"):
		p.pos++
		return &BlockStmt{Tok: t}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	stars := 0
	for p.accept(TokPunct, "*") {
		stars++
	}
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	decls, err := p.parseVarRest(base, stars, nameTok)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	tok := p.next() // for
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{Tok: tok}
	if !p.accept(TokPunct, ";") {
		if p.isTypeStart() {
			d, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: e}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
	}
	if !p.peekIs(TokPunct, ";") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = e
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.peekIs(TokPunct, ")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = e
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// --- expressions ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

var assignOps = map[string]string{
	"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *Parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		if op, ok := assignOps[t.Text]; ok {
			p.pos++
			rhs, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			return &Assign{Tok: t, Op: op, L: lhs, R: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.peekIs(TokPunct, "?") {
		return c, nil
	}
	tok := p.next()
	a, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ":"); err != nil {
		return nil, err
	}
	b, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{Tok: tok, C: c, A: a, B: b}, nil
}

// binary operator precedence, low to high.
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinaryExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Tok: t, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Tok: t, Op: t.Text, X: x}, nil
		case "+":
			p.pos++
			return p.parseUnary()
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Tok: t, Op: t.Text, X: x}, nil
		case "(":
			// Cast if "(" starts a type.
			nt := p.toks[p.pos+1]
			if nt.Kind == TokKeyword && nt.Text != "sizeof" {
				p.pos++
				ty, err := p.parseCastType()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{Tok: t, Type: ty, X: x}, nil
			}
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.pos++
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		ty, err := p.parseCastType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{Tok: t, Type: ty}, nil
	}
	return p.parsePostfix()
}

// parseCastType parses "base '*'*" inside a cast or sizeof.
func (p *Parser) parseCastType() (*TypeExpr, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ty := *base
	for p.accept(TokPunct, "*") {
		ty.Stars++
	}
	return &ty, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "[":
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{Tok: t, X: x, I: idx}
		case ".":
			p.pos++
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &Member{Tok: t, X: x, Name: nameTok.Text}
		case "->":
			p.pos++
			nameTok, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &Member{Tok: t, X: x, Name: nameTok.Text, Arrow: true}
		case "++", "--":
			p.pos++
			x = &Postfix{Tok: t, Op: t.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.pos++
		return &IntLit{Tok: t, Val: t.Int, IsLong: t.Long || t.Int > 2147483647 || t.Int < -2147483648}, nil
	case TokCharLit:
		p.pos++
		return &IntLit{Tok: t, Val: t.Int}, nil
	case TokFloatLit:
		p.pos++
		return &FloatLit{Tok: t, Val: t.Float}, nil
	case TokStrLit:
		p.pos++
		return &StrLit{Tok: t, Val: t.Str}, nil
	case TokIdent:
		p.pos++
		if p.peekIs(TokPunct, "(") {
			p.pos++
			call := &Call{Tok: t, Name: t.Text}
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Tok: t, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(t.Line, t.Col, "unexpected %s in expression", t)
}

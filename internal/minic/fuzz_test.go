package minic

import "testing"

// FuzzMiniCParse hardens the compiler frontend against mutated
// benchmark sources: Compile may reject input with an error, but it
// must never panic or hang, whatever bytes it is fed.
func FuzzMiniCParse(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`int g = 42;
struct node { int v; struct node *next; };
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int arr[4] = {1, 2, 3};
    char msg[8] = "hi";
    double d = 3.5;
    for (int i = 0; i < 4; i++) arr[i] += g;
    while (arr[0] > 0) { arr[0]--; }
    print_long(fib(10)); print_str(msg); print_double(d);
    return arr[1];
}`)
	f.Add("int main() { int *p = &p; return **p; }")
	f.Add("struct s { struct s x; }; int main() { return 0; }")
	f.Add("int main() { return 0x; }")
	f.Add(`int main() { char c = '\x41'; print_str("\q"); return c; }`)
	f.Add("int main() { return ((((((1)))))); }")
	f.Add("/* unterminated")
	f.Add(`int main() { "unterminated`)

	f.Fuzz(func(t *testing.T, src string) {
		// Errors are fine — panics are the bug.
		_, _ = Compile("fuzz", src)
	})
}

package minic

import (
	"strings"
	"testing"
)

func TestLexerTokens(t *testing.T) {
	toks, err := LexAll(`int x = 0x1F; double d = 2.5e-3; char c = '\n'; // comment
/* block
   comment */ long big = 7L; "str\t";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	// Spot checks.
	if toks[0].Kind != TokKeyword || toks[0].Text != "int" {
		t.Errorf("tok0: %v", toks[0])
	}
	if toks[3].Kind != TokIntLit || toks[3].Int != 0x1F {
		t.Errorf("hex literal: %v", toks[3])
	}
	var foundFloat, foundChar, foundLong, foundStr bool
	for _, tok := range toks {
		switch {
		case tok.Kind == TokFloatLit && tok.Float == 2.5e-3:
			foundFloat = true
		case tok.Kind == TokCharLit && tok.Int == '\n':
			foundChar = true
		case tok.Kind == TokIntLit && tok.Long && tok.Int == 7:
			foundLong = true
		case tok.Kind == TokStrLit && tok.Str == "str\t":
			foundStr = true
		}
	}
	if !foundFloat || !foundChar || !foundLong || !foundStr {
		t.Errorf("literals missing: float=%v char=%v long=%v str=%v (%v)",
			foundFloat, foundChar, foundLong, foundStr, kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"int a = 'x", "char *s = \"unterminated", "/* open", "int @ = 1;",
	} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("lexer accepted %q", src)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	f, err := Parse("int main() { return 2 + 3 * 4 - 1; }")
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.Items[0].(*ReturnStmt)
	// ((2 + (3*4)) - 1)
	sub, ok := ret.X.(*Binary)
	if !ok || sub.Op != "-" {
		t.Fatalf("top is %T", ret.X)
	}
	add, ok := sub.L.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("left is %v", sub.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("add rhs is %v", add.R)
	}
}

func TestAssignmentRightAssociative(t *testing.T) {
	f, err := Parse("int main() { int a; int b; a = b = 3; return a; }")
	if err != nil {
		t.Fatal(err)
	}
	es := f.Funcs[0].Body.Items[2].(*ExprStmt)
	outer := es.X.(*Assign)
	if _, ok := outer.R.(*Assign); !ok {
		t.Fatalf("a = (b = 3) expected, rhs is %T", outer.R)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { if return; }",
		"int main() { int x[0]; return 0; }",
		"unsigned int x;",
		"int main() { break; return 0; }", // semantic, caught at codegen
	}
	for _, src := range cases[:5] {
		if _, err := Parse(src); err == nil {
			t.Errorf("parser accepted %q", src)
		}
	}
	if _, err := Compile("t", cases[5]); err == nil {
		t.Errorf("compile accepted break outside loop")
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undeclared", `int main() { return zz; }`},
		{"void-var", `int main() { void v; return 0; }`},
		{"bad-call-arity", `int f(int a) { return a; } int main() { return f(1, 2); }`},
		{"undeclared-fn", `int main() { return g(); }`},
		{"deref-int", `int main() { int x = 3; return *x; }`},
		{"assign-to-literal", `int main() { 3 = 4; return 0; }`},
		{"redeclared", `int main() { int x; int x; return 0; }`},
		{"struct-field", `struct s { int a; }; int main() { struct s v; return v.b; }`},
		{"arrow-on-value", `struct s { int a; }; int main() { struct s v; return v->a; }`},
		{"return-in-void", `void f() { return 3; } int main() { return 0; }`},
		{"missing-return-type", `int main() { double d = 1.0; int *p = d; return 0; }`},
		{"redefine-builtin", `int malloc(long n) { return 0; } int main() { return 0; }`},
		{"dup-global", `int g; int g; int main() { return 0; }`},
		{"continue-outside", `int main() { continue; return 0; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.name, c.src); err == nil {
			t.Errorf("%s: compile accepted\n%s", c.name, c.src)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Compile("t", "int main() {\n  return zz;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestGlobalsAndInitializers(t *testing.T) {
	mod, err := Compile("t", `
int scalar = -7;
double pi = 3.5;
int arr[4] = {1, 2, 3};
char msg[8] = "hi";
int zeroed[10];
int main() { return scalar + arr[0] + arr[3] + zeroed[5] + msg[1]; }
`)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.Global("arr")
	if g == nil || g.Elem.Size() != 16 {
		t.Fatal("arr global")
	}
	if g.Init[0] != 1 || g.Init[4] != 2 || g.Init[12] != 0 {
		t.Errorf("arr init image: %v", g.Init)
	}
	m := mod.Global("msg")
	if string(m.Init[:2]) != "hi" || m.Init[2] != 0 {
		t.Errorf("msg init: %v", m.Init)
	}
}

func TestBadInitializers(t *testing.T) {
	cases := []string{
		`int arr[2] = {1, 2, 3}; int main() { return 0; }`,
		`char s[2] = "abc"; int main() { return 0; }`,
		`int x = 1 + f(); int main() { return 0; }`,
		`int arr[2] = 5; int main() { return 0; }`,
	}
	for _, src := range cases {
		if _, err := Compile("t", src); err == nil {
			t.Errorf("accepted bad initializer: %s", src)
		}
	}
}

func TestSizeof(t *testing.T) {
	mod, err := Compile("t", `
struct pair { int a; double b; };
int main() {
    if (sizeof(int) != 4) return 1;
    if (sizeof(long) != 8) return 2;
    if (sizeof(char) != 1) return 3;
    if (sizeof(double) != 8) return 4;
    if (sizeof(int*) != 8) return 5;
    if (sizeof(struct pair) != 16) return 6;
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Func("main") == nil {
		t.Fatal("no main")
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	if _, err := Compile("t", `
struct node { int v; struct node *next; };
int main() {
    struct node n;
    n.v = 1;
    n.next = 0;
    return n.v;
}`); err != nil {
		t.Fatal(err)
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	if _, err := Compile("t", `
int helper(int x);
int main() { return helper(4); }
int helper(int x) { return x * 2; }
`); err != nil {
		t.Fatal(err)
	}
	// Conflicting signature is rejected.
	if _, err := Compile("t", `
int helper(int x);
double helper(int x) { return 1.0; }
int main() { return 0; }
`); err == nil {
		t.Fatal("conflicting declaration accepted")
	}
}

// TestNestedStructsAndArrays exercises deep aggregate composition.
func TestNestedStructsAndArrays(t *testing.T) {
	mod, err := Compile("nested", `
struct inner { int a[3]; double w; };
struct outer { struct inner rows[2]; int tag; };
struct outer grid[2];

int main() {
    grid[1].rows[0].a[2] = 42;
    grid[1].rows[0].w = 2.5;
    grid[0].tag = 7;
    struct outer *p = &grid[1];
    return p->rows[0].a[2] + grid[0].tag + (int)p->rows[0].w;
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := mod.Global("grid")
	// inner: a[3] (12) + pad(4) + w(8) = 24; outer: rows[2] (48) + tag(4) + pad(4) = 56
	if g.Elem.Size() != 112 {
		t.Fatalf("nested layout size = %d, want 112", g.Elem.Size())
	}
}

// TestCommaSeparatedDeclarators covers "int a, *p, arr[3];" forms.
func TestCommaSeparatedDeclarators(t *testing.T) {
	if _, err := Compile("commas", `
int a = 1, b = 2, c;
int main() {
    int x = 5, *p = &x, arr[3];
    arr[0] = *p;
    c = a + b;
    return arr[0] + c;
}`); err != nil {
		t.Fatal(err)
	}
}

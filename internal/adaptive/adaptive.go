// Package adaptive implements the study's sequential early-stopping
// statistics engine: a group-sequential stopping rule that ends a
// campaign cell once every outcome-rate Wilson 95% interval is narrower
// than a target ε, plus the stratified budget-reallocation planner that
// moves the attempts saved by early-stopped cells to the cells with the
// widest remaining intervals.
//
// Everything here is a pure function of outcome counts: no wall clock,
// no randomness, no goroutine interleaving. The stopping decision for a
// cell depends only on the prefix of its attempt records (evaluated at a
// fixed attempt-count cadence), and the reallocation plan depends only
// on the round-1 stop states of all cells taken in canonical order.
// That purity is what lets checkpoints, shard merges, and fleet leases
// reproduce an adaptive study byte for byte (docs/adaptive.md).
package adaptive

import (
	"fmt"
	"strconv"
	"strings"

	"hlfi/internal/stats"
)

// Defaults for the -adaptive flag ("on" uses all three).
const (
	DefaultEps   = 0.02
	DefaultMinN  = 200
	DefaultCheck = 64
)

// Config is one adaptive-sampling policy. A nil *Config is the disabled
// state (fixed-n campaigns, byte-identical to a build without this
// package).
type Config struct {
	// Eps is the target precision: a cell stops once every outcome-rate
	// Wilson 95% half-width is <= Eps.
	Eps float64
	// MinN is the minimum-activation floor: the rule never fires before
	// MinN activated injections, whatever the intervals say (guards the
	// small-sample regime where Wilson intervals are narrow for
	// degenerate counts).
	MinN int
	// Check is the group-sequential cadence: the rule is evaluated only
	// when the attempt count is a multiple of Check. Fewer looks mean
	// less sequential-peeking undercoverage and a decision sequence that
	// is trivially a function of the attempt-record prefix.
	Check int
}

// Parse reads the -adaptive flag form: "" or "off" disables (nil
// config), "on" enables the defaults, and a comma-separated key=value
// list ("eps=0.02,min=200,check=64") overrides them individually.
func Parse(s string) (*Config, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return nil, nil
	}
	cfg := &Config{Eps: DefaultEps, MinN: DefaultMinN, Check: DefaultCheck}
	if s == "on" {
		return cfg, nil
	}
	for _, tok := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(tok), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("adaptive spec %q: want key=value tokens (eps=0.02,min=200,check=64), got %q", s, tok)
		}
		switch kv[0] {
		case "eps":
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, fmt.Errorf("adaptive spec %q: bad eps: %v", s, err)
			}
			cfg.Eps = v
		case "min":
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, fmt.Errorf("adaptive spec %q: bad min: %v", s, err)
			}
			cfg.MinN = v
		case "check":
			v, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, fmt.Errorf("adaptive spec %q: bad check: %v", s, err)
			}
			cfg.Check = v
		default:
			return nil, fmt.Errorf("adaptive spec %q: unknown key %q (want eps, min, check)", s, kv[0])
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseSignature reads a signature back into a config: the inverse of
// Signature, used when a checkpoint header is the source of truth (a
// -merge adopts the shard headers' adaptive config the same way it
// adopts n and seed). "off" and "" load as nil.
func ParseSignature(sig string) (*Config, error) {
	return Parse(sig)
}

// Validate checks the config ranges.
func (c *Config) Validate() error {
	if !(c.Eps > 0 && c.Eps < 1) {
		return fmt.Errorf("adaptive: eps %v out of range (0, 1)", c.Eps)
	}
	if c.MinN < 1 {
		return fmt.Errorf("adaptive: min %d must be >= 1", c.MinN)
	}
	if c.Check < 1 {
		return fmt.Errorf("adaptive: check %d must be >= 1", c.Check)
	}
	return nil
}

// Signature is the canonical string form pinned into checkpoint, shard,
// and fleet headers (nil config = "off"), exactly like the replay and
// compiled-engine signatures: resuming or merging across different
// adaptive configs would stitch together records no single run could
// have produced.
func (c *Config) Signature() string {
	if c == nil {
		return "off"
	}
	return fmt.Sprintf("eps=%s,min=%d,check=%d",
		strconv.FormatFloat(c.Eps, 'g', -1, 64), c.MinN, c.Check)
}

// Counts is the outcome tally of one cell's attempt-record prefix — the
// entire state the stopping rule is allowed to see.
type Counts struct {
	Benign       int
	SDC          int
	Crash        int
	Hang         int
	NotActivated int
	SimFaults    int
}

// Attempts is the length of the prefix the counts summarize (every
// attempt lands in exactly one bucket).
func (c Counts) Attempts() int {
	return c.Benign + c.SDC + c.Crash + c.Hang + c.NotActivated + c.SimFaults
}

// Activated is the number of trials behind the outcome proportions.
func (c Counts) Activated() int { return c.Benign + c.SDC + c.Crash + c.Hang }

// proportions returns the four outcome rates over activated trials.
func (c Counts) proportions() [4]stats.Proportion {
	n := c.Activated()
	return [4]stats.Proportion{
		{Successes: c.Benign, Trials: n},
		{Successes: c.SDC, Trials: n},
		{Successes: c.Crash, Trials: n},
		{Successes: c.Hang, Trials: n},
	}
}

// MaxHalfWidth is the widest Wilson 95% half-width among the four
// outcome-rate intervals (0 when nothing has activated).
func (c Counts) MaxHalfWidth() float64 {
	max := 0.0
	for _, p := range c.proportions() {
		lo, hi := p.WilsonCI()
		if hw := (hi - lo) / 2; hw > max {
			max = hw
		}
	}
	return max
}

// Converged reports whether the precision target is met: at least MinN
// activated injections and every outcome-rate Wilson half-width <= Eps.
// This is the cadence-free predicate; the stopping rule is ShouldStop.
func (c *Config) Converged(counts Counts) bool {
	if counts.Activated() < c.MinN {
		return false
	}
	return counts.MaxHalfWidth() <= c.Eps
}

// ShouldStop is the group-sequential stopping decision after one more
// attempt has been recorded: true only at Check-cadence attempt counts
// where the precision target is met. It is a pure function of the
// counts (equivalently, of the attempt-record prefix they summarize) —
// the property FuzzAdaptiveDecision fuzzes and the cross-mode
// determinism oracle gates.
func (c *Config) ShouldStop(counts Counts) bool {
	n := counts.Attempts()
	if n == 0 || n%c.Check != 0 {
		return false
	}
	return c.Converged(counts)
}

// Outcome is the attempt-record alphabet of the decision function, as
// seen by the tracker and the test harnesses.
type Outcome uint8

// The six ways one attempt can land.
const (
	OutcomeBenign Outcome = iota
	OutcomeSDC
	OutcomeCrash
	OutcomeHang
	OutcomeNotActivated
	OutcomeSimFault
	numOutcomes
)

// Note adds one attempt record to the counts.
func (c *Counts) Note(o Outcome) {
	switch o {
	case OutcomeBenign:
		c.Benign++
	case OutcomeSDC:
		c.SDC++
	case OutcomeCrash:
		c.Crash++
	case OutcomeHang:
		c.Hang++
	case OutcomeNotActivated:
		c.NotActivated++
	case OutcomeSimFault:
		c.SimFaults++
	}
}

// Tracker evaluates the stopping rule incrementally over a stream of
// attempt records. Once stopped it stays stopped (monotone), and its
// stop point equals Config.StopAt over the same prefix — the campaign
// loops use the same ShouldStop predicate, so all three agree.
type Tracker struct {
	cfg     *Config
	counts  Counts
	stopped bool
	stopN   int
}

// NewTracker builds a tracker for one cell.
func NewTracker(cfg *Config) *Tracker { return &Tracker{cfg: cfg, stopN: -1} }

// Note records one attempt and reports whether the cell is (now)
// stopped. Records arriving after the stop are ignored: the decision is
// monotone by construction.
func (t *Tracker) Note(o Outcome) bool {
	if t.stopped {
		return true
	}
	t.counts.Note(o)
	if t.cfg.ShouldStop(t.counts) {
		t.stopped = true
		t.stopN = t.counts.Attempts()
	}
	return t.stopped
}

// Stopped reports whether the rule has fired.
func (t *Tracker) Stopped() bool { return t.stopped }

// StopN is the attempt count at which the rule fired (-1 while
// running).
func (t *Tracker) StopN() int { return t.stopN }

// Counts returns the tally of the counted prefix (records after the
// stop are excluded).
func (t *Tracker) Counts() Counts { return t.counts }

// StopAt replays a full attempt-record sequence through the stopping
// rule and returns the attempt count at which it first fires, or -1 if
// it never does. It is the pure reference the tracker and the fuzz
// target are checked against: StopAt(seq[:k]) == -1 for every k below
// the stop, and StopAt(seq[:StopAt(seq)]) == StopAt(seq) (the decision
// at n depends only on records[0:n]).
func (c *Config) StopAt(seq []Outcome) int {
	var counts Counts
	for _, o := range seq {
		counts.Note(o)
		if c.ShouldStop(counts) {
			return counts.Attempts()
		}
	}
	return -1
}

package adaptive

import "testing"

// FuzzAdaptiveDecision throws arbitrary configs and attempt-record
// prefixes at the stopping rule and checks its structural contract:
// never panics, the incremental tracker agrees with the pure StopAt
// replay, the decision is monotone (once stopped, stays stopped), and it
// is prefix-pure — the decision at n depends only on records[0:n].
func FuzzAdaptiveDecision(f *testing.F) {
	f.Add(uint16(200), uint8(50), uint8(64), []byte{})
	f.Add(uint16(50), uint8(10), uint8(8), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint16(500), uint8(20), uint8(16), []byte{0, 1, 2, 3, 4, 5, 0, 1, 2, 3})
	f.Add(uint16(1), uint8(1), uint8(1), []byte{4, 4, 4, 0})
	f.Fuzz(func(t *testing.T, epsMil uint16, minN, check uint8, records []byte) {
		cfg := &Config{
			// eps in (0, 1): map the raw value onto 0.001..0.999.
			Eps:   float64(epsMil%999+1) / 1000,
			MinN:  int(minN%200) + 1,
			Check: int(check%128) + 1,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated config invalid: %v", err)
		}
		if len(records) > 4096 {
			records = records[:4096]
		}
		seq := make([]Outcome, len(records))
		for i, b := range records {
			seq[i] = Outcome(b % uint8(numOutcomes))
		}

		tr := NewTracker(cfg)
		firstStop := -1
		for i, o := range seq {
			stopped := tr.Note(o)
			if stopped && firstStop == -1 {
				firstStop = i + 1
			}
			if firstStop != -1 && !stopped {
				t.Fatalf("not monotone: un-stopped at attempt %d after stopping at %d", i+1, firstStop)
			}
		}
		if got := cfg.StopAt(seq); got != firstStop {
			t.Fatalf("tracker stopped at %d, StopAt replay says %d", firstStop, got)
		}
		if firstStop == -1 {
			return
		}
		if tr.StopN() != firstStop {
			t.Fatalf("StopN = %d, want %d", tr.StopN(), firstStop)
		}
		if got := tr.Counts().Attempts(); got != firstStop {
			t.Fatalf("counted prefix has %d attempts, want %d (post-stop records must not count)", got, firstStop)
		}
		// Prefix purity: the stop at n is decided by records[0:n] alone,
		// and no proper prefix of the stop fires.
		if got := cfg.StopAt(seq[:firstStop]); got != firstStop {
			t.Fatalf("StopAt(prefix) = %d, want %d", got, firstStop)
		}
		if got := cfg.StopAt(seq[:firstStop-1]); got != -1 {
			t.Fatalf("StopAt(prefix-1) = %d, want -1", got)
		}
	})
}

package adaptive

import (
	"math"
	"sort"

	"hlfi/internal/stats"
)

// CellState is one cell's round-1 stop state as seen by the planner:
// the final counts, whether the stopping rule fired, and whether the
// cell produced a result at all (skipped cells are neither donors nor
// recipients).
type CellState struct {
	Counts    Counts
	Converged bool
	Present   bool
}

// Plan is the stratified reallocation: per-cell activation grants in
// the same canonical order as the input states.
type Plan struct {
	// BaseN is the fixed-n baseline every cell started from.
	BaseN int
	// Saved is the activation budget donated by cells the rule stopped
	// early: sum of (BaseN - activated) over converged cells.
	Saved int
	// Grants[i] is the extra activated-injection target granted to cell
	// i (0 for donors, skipped cells, and cells the pool ran dry for).
	Grants []int
	// Granted is the total handed out (<= Saved).
	Granted int
	// Leftover is the undistributed remainder (Saved - Granted).
	Leftover int
}

// Reallocate computes the round-2 budget plan from the round-1 stop
// states of all cells in canonical order. It is a pure function of
// (baseN, states): every process that can see the complete round-1
// state — the single-process study, a -merge over shard checkpoints,
// the fleet coordinator, a resumed run — computes the identical plan.
//
// The pool is the activation budget converged cells did not use. It is
// granted to unconverged cells in order of widest remaining Wilson
// half-width (ties broken by canonical index), each receiving its
// projected deficit: the smallest total activation that would bring
// every outcome interval under Eps at the current rates, quantized up
// to the check cadence and capped at one extra BaseN per cell.
func (c *Config) Reallocate(baseN int, states []CellState) Plan {
	plan := Plan{BaseN: baseN, Grants: make([]int, len(states))}
	type need struct {
		idx     int
		width   float64
		deficit int
	}
	var needs []need
	for i, s := range states {
		if !s.Present {
			continue
		}
		if s.Converged {
			if saved := baseN - s.Counts.Activated(); saved > 0 {
				plan.Saved += saved
			}
			continue
		}
		// Unconverged cells whose final interval nonetheless meets the
		// target (possible when convergence lands between check
		// boundaries, or exactly at the fixed-n exit) need nothing.
		if c.Converged(s.Counts) {
			continue
		}
		d := c.deficit(s.Counts)
		if d > baseN {
			// Cap at one extra baseline per cell so a single pathological
			// cell cannot absorb the whole pool.
			d = baseN
		}
		if d <= 0 {
			continue
		}
		needs = append(needs, need{idx: i, width: s.Counts.MaxHalfWidth(), deficit: d})
	}
	sort.SliceStable(needs, func(a, b int) bool {
		if needs[a].width != needs[b].width {
			return needs[a].width > needs[b].width
		}
		return needs[a].idx < needs[b].idx
	})
	remaining := plan.Saved
	for _, n := range needs {
		if remaining == 0 {
			break
		}
		g := n.deficit
		if g > remaining {
			g = remaining
		}
		plan.Grants[n.idx] = g
		plan.Granted += g
		remaining -= g
	}
	plan.Leftover = plan.Saved - plan.Granted
	return plan
}

// deficit is the extra activation a cell would need to meet the
// precision target if its observed rates held: the smallest total m
// with every projected Wilson half-width <= Eps (and m >= MinN), minus
// the current activation, rounded up to a multiple of Check and capped
// at BaseN worth of extra budget.
func (c *Config) deficit(counts Counts) int {
	cur := counts.Activated()
	if cur == 0 {
		// No rate estimate to project from; grant a full check block so
		// the cell at least reaches the decision boundary.
		return c.Check
	}
	m := c.MinN
	if m < cur {
		m = cur
	}
	for _, p := range counts.proportions() {
		r := p.Rate()
		if n := requiredTrials(r, c.Eps); n > m {
			m = n
		}
	}
	d := m - cur
	if d <= 0 {
		return 0
	}
	// Quantize up to the check cadence: the rule can only fire at check
	// boundaries. (Reallocate caps the result at one baseline per cell.)
	d = (d + c.Check - 1) / c.Check * c.Check
	return d
}

// requiredTrials is the smallest trial count whose Wilson 95%
// half-width at rate r is <= eps. The half-width is decreasing in n for
// a fixed rate, so binary search applies.
func requiredTrials(r, eps float64) int {
	if wilsonHalfWidth(r, 1) <= eps {
		return 1
	}
	lo, hi := 1, 1
	for wilsonHalfWidth(r, hi) > eps {
		hi *= 2
		if hi >= 1<<30 {
			break
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if wilsonHalfWidth(r, mid) <= eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// wilsonHalfWidth is the Wilson 95% half-width a proportion near r
// would have over n trials, using the same stats.Proportion.WilsonCI
// the stopping rule evaluates.
func wilsonHalfWidth(r float64, n int) float64 {
	p := stats.Proportion{Successes: int(math.Round(r * float64(n))), Trials: n}
	lo, hi := p.WilsonCI()
	return (hi - lo) / 2
}

package adaptive

import (
	"math/rand"
	"testing"
)

// simCell draws one synthetic campaign cell: attempts are multinomial
// over (benign, sdc, crash, hang, not-activated) at fixed true rates,
// run through the stopping rule up to a fixed-n exit at baseN activated.
// Returns the final counts and whether the rule fired.
func simCell(cfg *Config, rng *rand.Rand, rates [4]float64, pActivate float64, baseN int) (Counts, bool) {
	tr := NewTracker(cfg)
	var counts Counts
	for counts.Activated() < baseN {
		var o Outcome
		if rng.Float64() >= pActivate {
			o = OutcomeNotActivated
		} else {
			u := rng.Float64()
			switch {
			case u < rates[0]:
				o = OutcomeBenign
			case u < rates[0]+rates[1]:
				o = OutcomeSDC
			case u < rates[0]+rates[1]+rates[2]:
				o = OutcomeCrash
			default:
				o = OutcomeHang
			}
		}
		counts.Note(o)
		if tr.Note(o) {
			return counts, true
		}
	}
	return counts, false
}

// TestMonteCarloPrecisionAtStop drives ~1k simulated cells with random
// true outcome rates through the stopping rule and asserts the
// statistical contract: at every early stop the achieved Wilson
// half-widths are within eps, and the Wilson intervals cover the true
// conditional rates at roughly their nominal level (the group-sequential
// cadence gives up a little coverage to peeking; we gate at >= 93%
// empirically, against the 95% nominal).
func TestMonteCarloPrecisionAtStop(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo harness skipped in -short")
	}
	cfg := &Config{Eps: 0.05, MinN: 50, Check: 64}
	rng := rand.New(rand.NewSource(20260808))
	const cells = 1000
	baseN := 400

	stops := 0
	covered, intervals := 0, 0
	for i := 0; i < cells; i++ {
		// Random true rates: a Dirichlet-ish draw via normalized uniforms,
		// mixing concentrated and spread-out cells.
		var raw [4]float64
		sum := 0.0
		for j := range raw {
			raw[j] = rng.Float64()
			if rng.Intn(3) == 0 {
				raw[j] *= 0.05 // frequently push a rate toward 0
			}
			sum += raw[j]
		}
		for j := range raw {
			raw[j] /= sum
		}
		pAct := 0.3 + 0.7*rng.Float64()

		counts, stopped := simCell(cfg, rng, raw, pAct, baseN)
		if stopped {
			stops++
			if counts.Activated() < cfg.MinN {
				t.Fatalf("cell %d stopped below the MinN floor: %d < %d", i, counts.Activated(), cfg.MinN)
			}
			if hw := counts.MaxHalfWidth(); hw > cfg.Eps {
				t.Fatalf("cell %d stopped with max half-width %.4f > eps %.4f", i, hw, cfg.Eps)
			}
		}
		// Coverage of the true conditional outcome rates by the final
		// Wilson intervals, early-stopped or not.
		for j, p := range counts.proportions() {
			lo, hi := p.WilsonCI()
			if raw[j] >= lo && raw[j] <= hi {
				covered++
			}
			intervals++
			_ = j
		}
	}
	if stops < cells/20 {
		t.Fatalf("only %d/%d cells stopped early; the harness is not exercising the rule", stops, cells)
	}
	cov := float64(covered) / float64(intervals)
	if cov < 0.93 {
		t.Fatalf("empirical coverage %.4f < 0.93 (%d/%d intervals)", cov, covered, intervals)
	}
	t.Logf("early stops: %d/%d cells; empirical coverage %.4f over %d intervals", stops, cells, cov, intervals)
}

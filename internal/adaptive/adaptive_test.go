package adaptive

import (
	"math/rand"
	"testing"
)

func TestParseOffForms(t *testing.T) {
	for _, s := range []string{"", "off", "  off  "} {
		cfg, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if cfg != nil {
			t.Fatalf("Parse(%q) = %+v, want nil (disabled)", s, cfg)
		}
	}
}

func TestParseOnUsesDefaults(t *testing.T) {
	cfg, err := Parse("on")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Eps: DefaultEps, MinN: DefaultMinN, Check: DefaultCheck}
	if *cfg != want {
		t.Fatalf("Parse(\"on\") = %+v, want %+v", *cfg, want)
	}
}

func TestParseKeyValues(t *testing.T) {
	cfg, err := Parse("eps=0.05,min=50,check=32")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Eps: 0.05, MinN: 50, Check: 32}
	if *cfg != want {
		t.Fatalf("got %+v, want %+v", *cfg, want)
	}
	// Partial overrides keep the other defaults.
	cfg, err = Parse("eps=0.1")
	if err != nil {
		t.Fatal(err)
	}
	want = Config{Eps: 0.1, MinN: DefaultMinN, Check: DefaultCheck}
	if *cfg != want {
		t.Fatalf("got %+v, want %+v", *cfg, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"eps",            // no =
		"eps=notanum",    // bad float
		"min=x",          // bad int
		"check=x",        // bad int
		"frobnicate=1",   // unknown key
		"eps=0",          // out of range
		"eps=1",          // out of range
		"eps=-0.1",       // out of range
		"min=0",          // out of range
		"check=0",        // out of range
		"eps=0.05,min=0", // valid then invalid
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	var nilCfg *Config
	if got := nilCfg.Signature(); got != "off" {
		t.Fatalf("nil signature = %q, want \"off\"", got)
	}
	for _, s := range []string{"on", "eps=0.05,min=50,check=32", "eps=0.125"} {
		cfg, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSignature(cfg.Signature())
		if err != nil {
			t.Fatalf("ParseSignature(%q): %v", cfg.Signature(), err)
		}
		if *back != *cfg {
			t.Fatalf("round trip of %q: %+v != %+v", s, *back, *cfg)
		}
	}
	if cfg, err := ParseSignature("off"); err != nil || cfg != nil {
		t.Fatalf("ParseSignature(\"off\") = %v, %v; want nil, nil", cfg, err)
	}
}

func TestShouldStopRespectsCadenceAndFloor(t *testing.T) {
	cfg := &Config{Eps: 0.5, MinN: 10, Check: 8}
	// Very loose eps: the rule fires at the first check boundary past the
	// floor, and at no attempt count that is not a multiple of Check.
	var counts Counts
	for i := 1; i <= 64; i++ {
		counts.Note(OutcomeBenign)
		stop := cfg.ShouldStop(counts)
		atBoundary := i%cfg.Check == 0
		pastFloor := counts.Activated() >= cfg.MinN
		if stop != (atBoundary && pastFloor) {
			t.Fatalf("attempt %d: ShouldStop = %v (boundary %v, floor %v)", i, stop, atBoundary, pastFloor)
		}
		if stop {
			return
		}
	}
	t.Fatal("rule never fired under a loose eps")
}

func TestTrackerMatchesStopAt(t *testing.T) {
	cfg := &Config{Eps: 0.08, MinN: 20, Check: 16}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		seq := make([]Outcome, 600)
		for i := range seq {
			seq[i] = Outcome(rng.Intn(int(numOutcomes)))
		}
		tr := NewTracker(cfg)
		firstStop := -1
		for i, o := range seq {
			stopped := tr.Note(o)
			if stopped && firstStop == -1 {
				firstStop = i + 1
			}
			if firstStop != -1 && !stopped {
				t.Fatalf("trial %d: tracker un-stopped at attempt %d (not monotone)", trial, i+1)
			}
		}
		if got := cfg.StopAt(seq); got != firstStop {
			t.Fatalf("trial %d: StopAt = %d, tracker first stop = %d", trial, got, firstStop)
		}
		if firstStop != -1 {
			if tr.StopN() != firstStop {
				t.Fatalf("trial %d: StopN = %d, want %d", trial, tr.StopN(), firstStop)
			}
			if got := tr.Counts().Attempts(); got != firstStop {
				t.Fatalf("trial %d: counted prefix %d attempts, want %d (post-stop records must be ignored)", trial, got, firstStop)
			}
			// Prefix purity: the decision at the stop depends only on the
			// prefix, and no shorter prefix stops.
			if got := cfg.StopAt(seq[:firstStop]); got != firstStop {
				t.Fatalf("trial %d: StopAt(prefix) = %d, want %d", trial, got, firstStop)
			}
			if got := cfg.StopAt(seq[:firstStop-1]); got != -1 {
				t.Fatalf("trial %d: StopAt(prefix-1) = %d, want -1", trial, got)
			}
		}
	}
}

func TestReallocateIsPureAndConserves(t *testing.T) {
	cfg := &Config{Eps: 0.05, MinN: 50, Check: 64}
	rng := rand.New(rand.NewSource(11))
	baseN := 200
	for trial := 0; trial < 100; trial++ {
		states := make([]CellState, 12)
		for i := range states {
			switch rng.Intn(4) {
			case 0: // absent (skipped cell)
			case 1: // converged early
				act := cfg.MinN + rng.Intn(baseN-cfg.MinN)
				states[i] = CellState{Present: true, Converged: true,
					Counts: Counts{Benign: act}}
			default: // ran to target, still wide
				sdc := rng.Intn(baseN / 2)
				states[i] = CellState{Present: true,
					Counts: Counts{Benign: baseN - sdc, SDC: sdc}}
			}
		}
		a := cfg.Reallocate(baseN, states)
		b := cfg.Reallocate(baseN, states)
		if len(a.Grants) != len(states) || len(b.Grants) != len(states) {
			t.Fatalf("trial %d: grants length %d/%d, want %d", trial, len(a.Grants), len(b.Grants), len(states))
		}
		for i := range a.Grants {
			if a.Grants[i] != b.Grants[i] {
				t.Fatalf("trial %d: plan not deterministic at cell %d: %d != %d", trial, i, a.Grants[i], b.Grants[i])
			}
		}
		sum := 0
		for i, g := range a.Grants {
			if g < 0 {
				t.Fatalf("trial %d: negative grant %d at cell %d", trial, g, i)
			}
			if g > baseN {
				t.Fatalf("trial %d: grant %d at cell %d exceeds the one-baseline cap", trial, g, i)
			}
			if g > 0 {
				if !states[i].Present {
					t.Fatalf("trial %d: absent cell %d granted %d", trial, i, g)
				}
				if states[i].Converged {
					t.Fatalf("trial %d: converged cell %d granted %d", trial, i, g)
				}
			}
			sum += g
		}
		if sum != a.Granted {
			t.Fatalf("trial %d: Granted %d != sum of grants %d", trial, a.Granted, sum)
		}
		if a.Granted > a.Saved {
			t.Fatalf("trial %d: granted %d exceeds saved pool %d", trial, a.Granted, a.Saved)
		}
		if a.Leftover != a.Saved-a.Granted {
			t.Fatalf("trial %d: leftover %d != saved %d - granted %d", trial, a.Leftover, a.Saved, a.Granted)
		}
	}
}

func TestReallocateWidestFirst(t *testing.T) {
	cfg := &Config{Eps: 0.01, MinN: 50, Check: 64}
	baseN := 200
	// One donor with a big pool, two needy cells: the wider one (rate
	// near 0.5) must be served before the narrower one (rate near 0.02).
	states := []CellState{
		{Present: true, Converged: true, Counts: Counts{Benign: 64}}, // saves 136
		{Present: true, Counts: Counts{Benign: 100, SDC: 100}},       // widest
		{Present: true, Counts: Counts{Benign: 196, SDC: 4}},         // narrower
	}
	plan := cfg.Reallocate(baseN, states)
	if plan.Saved != 136 {
		t.Fatalf("Saved = %d, want 136", plan.Saved)
	}
	if plan.Grants[0] != 0 {
		t.Fatalf("donor granted %d, want 0", plan.Grants[0])
	}
	if plan.Grants[1] == 0 {
		t.Fatal("widest cell got nothing")
	}
	// eps=0.01 needs thousands of trials at rate 0.5: the widest cell's
	// capped deficit swallows the whole pool before the narrow cell.
	if plan.Grants[2] != 0 {
		t.Fatalf("narrower cell granted %d before the widest was satisfied", plan.Grants[2])
	}
}

func TestConvergedNeedsFloorAndWidth(t *testing.T) {
	cfg := &Config{Eps: 0.05, MinN: 100, Check: 1}
	if cfg.Converged(Counts{Benign: 50}) {
		t.Fatal("converged below the MinN floor")
	}
	// 1000 benign trials: every rate is 0 or 1, intervals are tight.
	if !cfg.Converged(Counts{Benign: 1000}) {
		t.Fatal("not converged with 1000 one-sided trials")
	}
	// A 50/50 split over 200 trials has half-widths near 0.069 > 0.05.
	if cfg.Converged(Counts{Benign: 100, SDC: 100}) {
		t.Fatal("converged with a wide 50/50 interval")
	}
}

package cli

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestStripFlags: the supervisors' worker argument filter handles both
// "-flag value" and "-flag=value" forms and leaves study flags alone.
// (Table-driven; moved here from cmd/ficompare when the helper was
// promoted for sharing with the fleet supervisor.)
func TestStripFlags(t *testing.T) {
	cases := []struct {
		name  string
		in    []string
		strip map[string]bool
		want  []string
	}{
		{
			name: "supervisor flags in both forms",
			in: []string{
				"-experiment", "fig3", "-shard-workers", "3", "-n", "10",
				"-shard-dir=/tmp/x", "-q", "-status", ":8080", "-events=ev.jsonl", "-parallel", "2",
			},
			strip: map[string]bool{
				"shard-workers": true, "shard-dir": true,
				"status": true, "events": true, "q": false,
			},
			want: []string{"-experiment", "fig3", "-n", "10", "-parallel", "2"},
		},
		{
			name:  "double-dash form",
			in:    []string{"--status", ":1", "--n", "5"},
			strip: map[string]bool{"status": true},
			want:  []string{"--n", "5"},
		},
		{
			name:  "bare value matching a stripped name is kept",
			in:    []string{"-benchmarks", "status", "-status=:1"},
			strip: map[string]bool{"status": true},
			want:  []string{"-benchmarks", "status"},
		},
		{
			name:  "nothing stripped",
			in:    []string{"-n", "10", "-q"},
			strip: map[string]bool{"events": true},
			want:  []string{"-n", "10", "-q"},
		},
		{
			name:  "boolean flag with explicit value",
			in:    []string{"-q=true", "-n", "3"},
			strip: map[string]bool{"q": false},
			want:  []string{"-n", "3"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := StripFlags(tc.in, tc.strip); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("StripFlags(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// TestWorkerCommandLifecycle: WorkerCommand forwards SIGTERM on context
// cancellation and RunWorkerPool isolates worker failures, labelling
// each without cancelling siblings.
func TestWorkerCommandLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One worker exits 0, one exits 1, one sleeps until SIGTERM. Every
	// worker touches a sentinel at startup (the sleeper after installing
	// its trap) so the test can cancel without racing worker startup.
	dir := t.TempDir()
	ready := func(i int) string { return filepath.Join(dir, fmt.Sprintf("ready-%d", i)) }
	cmds := []*exec.Cmd{
		WorkerCommand(ctx, "/bin/sh", "-c", "trap 'exit 0' TERM; : >"+ready(0)+"; exit 0"),
		WorkerCommand(ctx, "/bin/sh", "-c", "trap 'exit 1' TERM; : >"+ready(1)+"; exit 1"),
		WorkerCommand(ctx, "/bin/sh", "-c",
			// The background sleep detaches from stdio so the orphan it
			// becomes after the trap fires cannot hold pipes open.
			"trap 'exit 7' TERM; : >"+ready(2)+"; sleep 30 >/dev/null 2>&1 & wait"),
	}
	go func() {
		// Cancel only after every worker has started and the sleeper has
		// its trap in place: the pool must SIGTERM the sleeper rather than
		// hang for the full sleep, and the fast workers must report their
		// own exit status, not a pre-start cancellation.
		for i := 0; i < len(cmds); {
			if _, err := os.Stat(ready(i)); err == nil {
				i++
				continue
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	failures := RunWorkerPool(cmds, func(i int) string {
		return []string{"ok-worker", "bad-worker", "slow-worker"}[i]
	})
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want bad-worker and slow-worker", failures)
	}
	joined := strings.Join(failures, "; ")
	if !strings.Contains(joined, "bad-worker") || !strings.Contains(joined, "slow-worker") {
		t.Errorf("failure labels missing: %v", failures)
	}
}

// Package cli holds the shared plumbing of the command-line tools:
// program loading and campaign reporting.
package cli

import (
	"fmt"
	"io"
	"os"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// LoadProgram builds a Program from a registered benchmark name or a
// minic source file (exactly one must be given).
func LoadProgram(benchName, srcPath string) (*core.Program, error) {
	switch {
	case benchName != "" && srcPath != "":
		return nil, fmt.Errorf("use -bench or -src, not both")
	case benchName != "":
		return bench.Build(benchName)
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		return core.BuildProgram(srcPath, string(src))
	default:
		return nil, fmt.Errorf("one of -bench or -src is required")
	}
}

// RunCampaign executes one campaign cell and prints the paper-style
// summary to w.
func RunCampaign(w io.Writer, prog *core.Program, level fault.Level, cat fault.Category, n int, seed int64, verbose bool) error {
	dyn, err := core.DynCount(prog, level, cat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s, category %s: %d dynamic candidate instructions\n",
		level, prog.Name, cat, dyn)
	c := &core.Campaign{Prog: prog, Level: level, Category: cat, N: n, Seed: seed}
	res, err := c.Run()
	if err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(w, "attempts=%d (non-activated redrawn: %d)\n", res.Attempts, res.NotActivated)
	}
	fmt.Fprintf(w, "activated faults : %d\n", res.Activated())
	fmt.Fprintf(w, "  crash  : %4d  (%5.1f%% ±%.1f%%)\n", res.Crash, 100*res.CrashRate().Rate(), 100*res.CrashRate().WaldCI())
	fmt.Fprintf(w, "  sdc    : %4d  (%5.1f%% ±%.1f%%)\n", res.SDC, 100*res.SDCRate().Rate(), 100*res.SDCRate().WaldCI())
	fmt.Fprintf(w, "  hang   : %4d  (%5.1f%%)\n", res.Hang, 100*res.HangRate().Rate())
	fmt.Fprintf(w, "  benign : %4d  (%5.1f%%)\n", res.Benign, 100*res.BenignRate().Rate())
	return nil
}

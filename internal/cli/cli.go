// Package cli holds the shared plumbing of the command-line tools:
// program loading and campaign reporting.
package cli

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hlfi/internal/adaptive"
	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
	"hlfi/internal/warehouse"
)

// LoadProgram builds a Program from a registered benchmark name or a
// minic source file (exactly one must be given).
func LoadProgram(benchName, srcPath string) (*core.Program, error) {
	switch {
	case benchName != "" && srcPath != "":
		return nil, fmt.Errorf("use -bench or -src, not both")
	case benchName != "":
		return bench.Build(benchName)
	case srcPath != "":
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return nil, err
		}
		return core.BuildProgram(srcPath, string(src))
	default:
		return nil, fmt.Errorf("one of -bench or -src is required")
	}
}

// BuildPrograms compiles the named benchmarks (comma-separated; empty
// means all six), logging build progress to stderr the way the study
// tools always have.
func BuildPrograms(subset string) ([]*core.Program, error) {
	var names []string
	if subset == "" {
		for _, b := range bench.All() {
			names = append(names, b.Name)
		}
	} else {
		names = strings.Split(subset, ",")
	}
	var progs []*core.Program
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "building %s...\n", name)
		p, err := bench.Build(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// CampaignOptions configures RunCampaign beyond the cell identity.
type CampaignOptions struct {
	// N activated injections to collect; Seed the campaign seed.
	N    int
	Seed int64
	// Verbose prints activation accounting.
	Verbose bool
	// EventsPath, when non-empty, captures the telemetry event stream of
	// the single-cell campaign as JSONL (flag parity with ficompare).
	EventsPath string
	// SimFaultLimit and Deadline are the campaign fault-tolerance knobs
	// (see core.Campaign).
	SimFaultLimit int
	Deadline      time.Duration
	// StatusAddr, when non-empty, serves live observability (/metrics,
	// /statusz, /debug/pprof/) on this address for the duration of the
	// campaign.
	StatusAddr string
	// StatusLinger keeps the status endpoint serving this long after the
	// campaign finishes (so scrapers and smoke tests can read the final
	// state of a short run).
	StatusLinger time.Duration
	// TraceAttempts arms fault-propagation tracing for the first
	// TraceAttempts attempts; traces are released as attempt_trace
	// telemetry events.
	TraceAttempts int
	// NoCompiled forces every attempt onto the interpreter instead of the
	// compiled execution engines (flag parity with ficompare's
	// -no-compiled; results are byte-identical either way).
	NoCompiled bool
	// Adaptive, when non-nil, arms the early-stopping rule for the
	// single cell (flag parity with ficompare's -adaptive; a lone cell
	// has no reallocation round, it simply stops once converged).
	Adaptive *adaptive.Config
	// Warehouse, when non-empty, is the content-addressed result store
	// directory: a cached record for this exact cell (program bytes,
	// fault model, n, seed, engine and adaptive signatures) replays its
	// summary without executing an injection, and a fresh result is
	// stored back. The key space is shared with ficompare and the fleet.
	Warehouse string
}

// RunCampaign executes one campaign cell and prints the paper-style
// summary to w.
func RunCampaign(w io.Writer, prog *core.Program, level fault.Level, cat fault.Category, opts CampaignOptions) error {
	dyn, err := core.DynCount(prog, level, cat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %s, category %s: %d dynamic candidate instructions\n",
		level, prog.Name, cat, dyn)

	var rec telemetry.Recorder
	if opts.EventsPath != "" {
		f, err := os.Create(opts.EventsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = telemetry.NewJSONLSink(f)
	}

	var compiled *core.CompiledConfig
	if !opts.NoCompiled {
		compiled = &core.CompiledConfig{}
	}

	var om *obs.Metrics
	if opts.StatusAddr != "" {
		om = obs.New()
		om.CellsPlanned.Set(1)
		obs.RegisterBuildInfo(om.Registry(), compiled.Signature(), opts.Adaptive.Signature())
		srv, err := obs.StartServer(opts.StatusAddr, om.Registry(), nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "status endpoint listening on %s\n", srv.Addr())
		// LIFO defers: linger (if any) runs before the server closes, so
		// short campaigns stay scrapeable for a moment after finishing.
		defer srv.Close()
		if opts.StatusLinger > 0 {
			defer time.Sleep(opts.StatusLinger)
		}
	}
	if compiled != nil {
		compiled.Obs = om
	}

	// Result warehouse: a cached record for this exact cell replays the
	// summary without executing an injection; a fresh result (or a
	// deterministic skip) is stored back. The summary lines come from the
	// same renderer either way, so stdout is byte-identical to a cold run.
	var wcache *warehouse.StudyCache
	key := core.CellKey{Prog: prog.Name, Level: level, Category: cat}
	if opts.Warehouse != "" {
		wstore, werr := warehouse.Open(opts.Warehouse)
		if werr != nil {
			return werr
		}
		if om != nil {
			wstore.Hits, wstore.Misses, wstore.Stores = om.WarehouseHits, om.WarehouseMisses, om.WarehouseStores
		}
		wcache = wstore.ForStudy(core.CheckpointShape{N: opts.N, Seed: opts.Seed,
			Compiled: compiled.Signature(), Adaptive: opts.Adaptive.Signature()},
			[]*core.Program{prog})
		// The campaign below streams directly from opts.Seed, not from the
		// study scheduler's per-cell derivation — key on that.
		wcache.SetRawCampaignSeed()
		if res, skip, ok := wcache.Lookup(key, opts.N, opts.N); ok {
			switch {
			case res != nil:
				fmt.Fprintln(os.Stderr, "cell resolved from the result warehouse (no injections executed)")
				if rec != nil {
					rec.Record(telemetry.Event{Type: telemetry.EventStudyStart,
						N: opts.N, Seed: opts.Seed, Cells: 1, Parallel: 1})
					rec.Record(telemetry.Event{Type: telemetry.EventWarehouseHit,
						Benchmark: prog.Name, Level: level.String(), Category: cat.String(),
						Attempts: res.Attempts, Activated: res.Activated(),
						Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
						NotActivated: res.NotActivated, SimFaults: res.SimFaults,
						AdaptiveTarget: res.Adaptive.Target, AdaptiveConverged: res.Adaptive.Converged})
					rec.Record(telemetry.Event{Type: telemetry.EventStudyDone, Cells: 1})
				}
				printCampaignSummary(w, res, opts.Verbose)
				return nil
			case skip != nil:
				if rec != nil {
					rec.Record(telemetry.Event{Type: telemetry.EventCellSkip,
						Benchmark: prog.Name, Level: level.String(), Category: cat.String(),
						Err: skip.Err})
				}
				return fmt.Errorf("%s", skip.Err)
			}
		}
	}

	var metrics core.CellMetrics
	c := &core.Campaign{Prog: prog, Level: level, Category: cat,
		N: opts.N, Seed: opts.Seed, Metrics: &metrics,
		SimFaultLimit: opts.SimFaultLimit, Deadline: opts.Deadline,
		Compiled: compiled, Obs: om, TraceAttempts: opts.TraceAttempts,
		Adaptive: opts.Adaptive}
	res, err := c.Run()
	emitCampaignEvents(rec, c, res, metrics, err)
	if wcache != nil {
		switch {
		case res != nil && err == nil:
			wcache.StoreCell(key, opts.N, opts.N, res)
		case err != nil:
			// StoreSkip keeps only deterministic kinds; deadline and other
			// execution accidents are dropped there.
			wcache.StoreSkip(key, opts.N, opts.N,
				core.CheckpointSkip{Kind: core.SkipKindOf(err), Err: err.Error()})
		}
	}
	if err != nil {
		return err
	}
	printCampaignSummary(w, res, opts.Verbose)
	return nil
}

// printCampaignSummary renders the paper-style cell summary — shared by
// the executed and warehouse-replayed paths so their stdout is
// byte-identical.
func printCampaignSummary(w io.Writer, res *core.CellResult, verbose bool) {
	if verbose {
		fmt.Fprintf(w, "attempts=%d (non-activated redrawn: %d)\n", res.Attempts, res.NotActivated)
		if res.Adaptive.Target > 0 && res.Adaptive.Converged {
			fmt.Fprintf(w, "adaptive: converged at %d activated (target %d)\n", res.Activated(), res.Adaptive.Target)
		}
		if res.SimFaults > 0 {
			fmt.Fprintf(w, "simulator panics contained: %d\n", res.SimFaults)
		}
	}
	fmt.Fprintf(w, "activated faults : %d\n", res.Activated())
	fmt.Fprintf(w, "  crash  : %4d  (%5.1f%% ±%.1f%%)\n", res.Crash, 100*res.CrashRate().Rate(), 100*res.CrashRate().WaldCI())
	fmt.Fprintf(w, "  sdc    : %4d  (%5.1f%% ±%.1f%%)\n", res.SDC, 100*res.SDCRate().Rate(), 100*res.SDCRate().WaldCI())
	fmt.Fprintf(w, "  hang   : %4d  (%5.1f%%)\n", res.Hang, 100*res.HangRate().Rate())
	fmt.Fprintf(w, "  benign : %4d  (%5.1f%%)\n", res.Benign, 100*res.BenignRate().Rate())
}

// emitCampaignEvents mirrors the study event stream for a single-cell
// campaign: study_start, any sim_fault records, cell_done (or cell_skip
// on a soft failure), study_done.
func emitCampaignEvents(rec telemetry.Recorder, c *core.Campaign, res *core.CellResult, m core.CellMetrics, runErr error) {
	if rec == nil {
		return
	}
	rec.Record(telemetry.Event{Type: telemetry.EventStudyStart,
		N: c.N, Seed: c.Seed, Cells: 1, Parallel: 1, Workers: m.Workers})
	for _, sf := range m.SimFaults {
		rec.Record(telemetry.Event{Type: telemetry.EventSimFault,
			Benchmark: sf.Prog, Level: sf.Level.String(), Category: sf.Category.String(),
			Attempt: sf.Attempt, AttemptSeed: sf.Seed, Sequential: sf.Sequential,
			Panic: sf.Panic})
	}
	switch {
	case res != nil:
		for _, tr := range m.Traces {
			rec.Record(telemetry.Event{Type: telemetry.EventAttemptTrace,
				Benchmark: c.Prog.Name, Level: c.Level.String(), Category: c.Category.String(),
				Attempt: tr.Attempt, Trigger: tr.Trigger,
				Outcome: tr.Outcome.String(), Spans: tr.Spans})
		}
		rate := 0.0
		if res.Attempts > 0 {
			rate = float64(res.Activated()) / float64(res.Attempts)
		}
		rec.Record(telemetry.Event{Type: telemetry.EventCellDone,
			Benchmark: c.Prog.Name, Level: c.Level.String(), Category: c.Category.String(),
			DurationMS: telemetry.Ms(m.ScanTime + m.RunTime),
			ScanMS:     telemetry.Ms(m.ScanTime),
			Workers:    m.Workers,
			Attempts:   res.Attempts, Activated: res.Activated(), ActivationRate: rate,
			Benign: res.Benign, SDC: res.SDC, Crash: res.Crash, Hang: res.Hang,
			NotActivated: res.NotActivated, SimFaults: res.SimFaults,
			AdaptiveTarget: res.Adaptive.Target, AdaptiveConverged: res.Adaptive.Converged})
		rec.Record(telemetry.Event{Type: telemetry.EventStudyDone, Cells: 1,
			Attempts: res.Attempts, Activated: res.Activated(),
			DurationMS: telemetry.Ms(m.ScanTime + m.RunTime)})
	case runErr != nil:
		rec.Record(telemetry.Event{Type: telemetry.EventCellSkip,
			Benchmark: c.Prog.Name, Level: c.Level.String(), Category: c.Category.String(),
			Err: runErr.Error()})
	}
}

package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hlfi/internal/fault"
)

func TestLoadProgramValidation(t *testing.T) {
	if _, err := LoadProgram("", ""); err == nil {
		t.Error("neither -bench nor -src should error")
	}
	if _, err := LoadProgram("bzip2m", "x.c"); err == nil {
		t.Error("both -bench and -src should error")
	}
	if _, err := LoadProgram("nonexistent", ""); err == nil {
		t.Error("unknown benchmark should error")
	}
	if _, err := LoadProgram("", "/does/not/exist.c"); err == nil {
		t.Error("missing source file should error")
	}
}

func TestLoadProgramFromSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.c")
	src := `
int main() {
    int s = 0;
    for (int i = 0; i < 5; i++) s += i * i;
    print_int(s);
    print_str("\n");
    return 0;
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := LoadProgram("", path)
	if err != nil {
		t.Fatal(err)
	}
	if string(prog.GoldenOutput) != "30\n" {
		t.Fatalf("golden output %q", prog.GoldenOutput)
	}

	var buf bytes.Buffer
	if err := RunCampaign(&buf, prog, fault.LevelIR, fault.CatAll,
		CampaignOptions{N: 20, Seed: 1, Verbose: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LLFI", "dynamic candidate", "activated faults : 20", "crash", "sdc", "benign"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign report missing %q:\n%s", want, out)
		}
	}

	var buf2 bytes.Buffer
	if err := RunCampaign(&buf2, prog, fault.LevelASM, fault.CatCmp,
		CampaignOptions{N: 15, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "PINFI") {
		t.Errorf("asm campaign report:\n%s", buf2.String())
	}
}

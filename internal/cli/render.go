package cli

import (
	"fmt"
	"io"

	"hlfi/internal/core"
)

// RenderExperiment writes the requested experiment's rendered artifacts
// for a completed study, byte-for-byte the way ficompare prints them.
// The fleet coordinator renders through the same function, so a
// service-run campaign's report is comparable to the single-process
// run with cmp. Unknown experiment names render nothing; callers
// validate up front.
func RenderExperiment(w io.Writer, st *core.Study, experiment string) {
	switch experiment {
	case "fig3":
		fmt.Fprint(w, st.RenderFigure3())
	case "table4":
		fmt.Fprint(w, st.RenderTableIV())
	case "fig4":
		fmt.Fprint(w, st.RenderFigure4())
	case "table5":
		fmt.Fprint(w, st.RenderTableV())
	case "all":
		fmt.Fprintln(w, st.RenderFigure3())
		fmt.Fprintln(w, st.RenderTableIV())
		fmt.Fprintln(w, st.RenderFigure4())
		fmt.Fprintln(w, st.RenderTableV())
		fmt.Fprintln(w, st.RenderSummary())
		// Adaptive studies carry an extra accuracy-vs-cost section;
		// fixed-n studies render "" here, keeping their output identical.
		if s := st.RenderAdaptive(); s != "" {
			fmt.Fprintln(w, s)
		}
	}
}

// Worker-subprocess lifecycle shared by the local scale-out
// supervisors: the ficompare -shard-workers supervisor and the fiserve
// -spawn-workers convenience mode both spawn one binary per worker,
// forward cooperative SIGTERM on cancellation, bound how long a
// terminated worker may linger, and collect per-worker failures without
// letting one dead worker take down the rest.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// workerWaitDelay bounds how long a cancelled worker may linger between
// the forwarded SIGTERM and the supervisor escalating to SIGKILL.
const workerWaitDelay = 10 * time.Second

// WorkerCommand builds the exec.Cmd both supervisors use for a worker
// subprocess: stdout discarded (the report comes from the merge or the
// coordinator, never from workers), stderr passed through, cooperative
// SIGTERM on context cancellation (so workers flush checkpoints or
// finish leases cleanly), and a bounded WaitDelay before escalation.
func WorkerCommand(ctx context.Context, exe string, args ...string) *exec.Cmd {
	cmd := exec.CommandContext(ctx, exe, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = workerWaitDelay
	return cmd
}

// RunWorkerPool starts every command, waits for all of them, and
// returns one failure message per worker that exited non-nil (labelled
// by label(i)). A failed worker never cancels its siblings: fault
// isolation between workers is the point of running them as processes.
func RunWorkerPool(cmds []*exec.Cmd, label func(i int) string) []string {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
	)
	for i, cmd := range cmds {
		i, cmd := i, cmd
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cmd.Run(); err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("%s: %v", label(i), err))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return failures
}

// StripFlags removes the given flags from an argument list, handling
// both "-name value" and "-name=value" (and the "--" forms). The bool
// says whether the flag consumes a following value argument. Both
// supervisors use it to hand workers the study flags without the
// supervisor, durability, or endpoint flags a worker must not inherit.
func StripFlags(args []string, strip map[string]bool) []string {
	var out []string
	for i := 0; i < len(args); i++ {
		arg := args[i]
		name, hasValue := arg, false
		name = strings.TrimPrefix(name, "-")
		name = strings.TrimPrefix(name, "-")
		if j := strings.IndexByte(name, '='); j >= 0 {
			name, hasValue = name[:j], true
		}
		takesValue, stripped := strip[name]
		if !stripped || !strings.HasPrefix(arg, "-") {
			out = append(out, arg)
			continue
		}
		if takesValue && !hasValue {
			i++ // skip the separate value argument
		}
	}
	return out
}

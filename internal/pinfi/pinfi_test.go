package pinfi_test

import (
	"math/rand"
	"testing"

	"hlfi/internal/codegen"
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
	"hlfi/internal/pinfi"
	"hlfi/internal/x86"
)

const testSrc = `
int arr[8];
int main() {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        arr[i] = i * 3;
        acc = acc + (double)arr[i];
    }
    long sum = 0;
    for (int i = 0; i < 8; i++) sum += arr[i];
    print_long(sum); print_str(" ");
    print_double(acc); print_str("\n");
    return 0;
}
`

func build(t *testing.T) (*x86.Program, []byte, uint64) {
	t.Helper()
	mod, err := minic.Compile("t", testSrc)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Lower(mod, prep.Layout, codegen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prog, prep.Layout.Image, prep.Layout.Base
}

// TestSelectorCriteria checks the Table III rules at the assembly level.
func TestSelectorCriteria(t *testing.T) {
	prog, _, _ := build(t)
	dep := machine.DependentFlagMasks(prog)
	byCat := make(map[fault.Category][]bool)
	for _, cat := range fault.Categories {
		byCat[cat] = pinfi.Candidates(prog, cat)
	}
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if byCat[fault.CatAll][i] && !in.HasRegDest() && dep[i] == 0 {
			t.Errorf("all-candidate %s has no register destination", in.String())
		}
		if byCat[fault.CatArith][i] && !in.Op.IsArith() {
			t.Errorf("%s in arithmetic set", in.Op)
		}
		if byCat[fault.CatCast][i] && !in.Op.IsConvert() {
			t.Errorf("%s in cast/convert set", in.Op)
		}
		if byCat[fault.CatCmp][i] {
			if !in.Op.IsFlagSetter() {
				t.Errorf("%s in cmp set", in.Op)
			}
			if i+1 >= len(prog.Instrs) || !prog.Instrs[i+1].Op.IsCondJump() {
				t.Errorf("cmp candidate %d not followed by a conditional jump", i)
			}
		}
		if byCat[fault.CatLoad][i] {
			if in.Src.Kind != x86.OpMem {
				t.Errorf("load candidate without memory source: %s", in.String())
			}
		}
		// Stores and pushes must never be candidates.
		if in.Op == x86.PUSH && byCat[fault.CatAll][i] {
			t.Errorf("push selected: %s", in.String())
		}
		if in.Op == x86.MOV && in.Dst.Kind == x86.OpMem && byCat[fault.CatAll][i] {
			t.Errorf("store selected: %s", in.String())
		}
		for _, cat := range []fault.Category{fault.CatArith, fault.CatCast, fault.CatCmp, fault.CatLoad} {
			if byCat[cat][i] && !byCat[fault.CatAll][i] {
				t.Errorf("%s in %s but not all", in.Op, cat)
			}
		}
	}
}

func TestCmpCountsMatchIRLevel(t *testing.T) {
	// The paper observes nearly identical cmp counts at both levels:
	// every fused compare+branch corresponds to one IR compare feeding a
	// conditional branch. Statically, cmp candidates must be plentiful.
	prog, _, _ := build(t)
	cands := pinfi.Candidates(prog, fault.CatCmp)
	n := 0
	for _, c := range cands {
		if c {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("too few cmp candidates: %d", n)
	}
}

func TestInjectorLifecycle(t *testing.T) {
	prog, img, base := build(t)
	inj, err := pinfi.New(prog, img, base, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	if inj.DynTotal == 0 || len(inj.GoldenOutput) == 0 {
		t.Fatal("bad golden profile")
	}
	a := inj.InjectAt(7, rand.New(rand.NewSource(1)))
	b := inj.InjectAt(7, rand.New(rand.NewSource(1)))
	if a.Outcome != b.Outcome || string(a.Output) != string(b.Output) {
		t.Fatal("InjectAt not deterministic")
	}
}

func TestOutcomeDistribution(t *testing.T) {
	prog, img, base := build(t)
	inj, err := pinfi.New(prog, img, base, fault.CatAll)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[fault.Outcome]bool{}
	for i := 0; i < 400; i++ {
		seen[inj.InjectOne(rng).Outcome] = true
	}
	for _, o := range []fault.Outcome{fault.OutcomeBenign, fault.OutcomeSDC, fault.OutcomeCrash} {
		if !seen[o] {
			t.Errorf("outcome %s never observed", o)
		}
	}
	// With activation heuristics, some draws are still not activated
	// (dead flag bits are pruned but overwritten registers remain).
	_ = seen[fault.OutcomeNotActivated]
}

func TestFlagCandidatesUseDependentBits(t *testing.T) {
	prog, img, base := build(t)
	inj, err := pinfi.New(prog, img, base, fault.CatCmp)
	if err != nil {
		t.Fatal(err)
	}
	dep := machine.DependentFlagMasks(prog)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		res := inj.InjectOne(rng)
		if !res.Injection.Happened {
			continue
		}
		if res.Injection.TargetDesc != "rflags" {
			t.Fatalf("cmp category corrupted %s", res.Injection.TargetDesc)
		}
		mask := dep[res.Injection.InstrIdx]
		if mask&(1<<uint(res.Injection.Bit)) == 0 {
			t.Fatalf("flipped flag bit %d outside dependent mask %x (Figure 2a heuristic)",
				res.Injection.Bit, mask)
		}
	}
}

// TestCmpHeuristicGuaranteesActivation: because PINFI injects only the
// flag bits the very next conditional jump reads, every cmp-category
// fault is activated — the purpose of the Figure 2(a) heuristic.
func TestCmpHeuristicGuaranteesActivation(t *testing.T) {
	prog, img, base := build(t)
	inj, err := pinfi.New(prog, img, base, fault.CatCmp)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 150; i++ {
		res := inj.InjectOne(rng)
		if res.Outcome == fault.OutcomeNotActivated {
			t.Fatalf("cmp injection %d not activated: the dependent-bit heuristic must prevent this", i)
		}
	}
}

// Package pinfi implements the low-level fault injector of the study: a
// PINFI-style tool that profiles and corrupts programs at the assembly
// level (paper §IV), including the two activation heuristics of Figure 2:
// compare instructions are corrupted only in the flag bits their following
// conditional jump reads, and double-precision SSE destinations only in
// the low 64 bits of the XMM register.
package pinfi

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"hlfi/internal/compile/mc"
	"hlfi/internal/fault"
	"hlfi/internal/machine"
	"hlfi/internal/obs"
	"hlfi/internal/telemetry"
	"hlfi/internal/x86"
)

// HangFactor scales the golden instruction count into the hang budget.
const HangFactor = 20

// ErrNoCandidates reports a category with no dynamic injection targets.
var ErrNoCandidates = errors.New("pinfi: no dynamic candidates")

// Candidates marks the injectable machine instructions for a category,
// indexed by instruction position (paper Table III, right column).
func Candidates(p *x86.Program, cat fault.Category) []bool {
	out := make([]bool, len(p.Instrs))
	dep := machine.DependentFlagMasks(p)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch cat {
		case fault.CatAll:
			// Destination-register instructions, plus compares whose
			// flag bits feed a conditional jump.
			out[i] = in.HasRegDest() || dep[i] != 0
		case fault.CatArith:
			out[i] = in.Op.IsArith() && in.HasRegDest()
		case fault.CatCast:
			out[i] = in.Op.IsConvert() && in.HasRegDest()
		case fault.CatCmp:
			// "Instructions whose next instruction is a conditional
			// branch."
			out[i] = dep[i] != 0
		case fault.CatLoad:
			out[i] = isLoad(in)
		}
	}
	return out
}

// isLoad implements the Table III criterion: mov instructions with memory
// source and register destination (including the widening movs and SSE
// loads that real compilers emit for narrow and double loads).
func isLoad(in *x86.Instr) bool {
	switch in.Op {
	case x86.MOV, x86.MOVZX, x86.MOVSX:
		return in.Src.Kind == x86.OpMem && in.Dst.Kind == x86.OpReg
	case x86.MOVSD:
		return in.Src.Kind == x86.OpMem && in.Dst.Kind == x86.OpXmm
	default:
		return false
	}
}

// CountDynamic sums a profile over a candidate set.
func CountDynamic(profile []uint64, candidates []bool) uint64 {
	var n uint64
	for i, c := range candidates {
		if c {
			n += profile[i]
		}
	}
	return n
}

// Injector runs single-fault injections for one (program, category) pair
// at the assembly level.
type Injector struct {
	Prog        *x86.Program
	LayoutImage []byte
	LayoutBase  uint64

	Cat        fault.Category
	Candidates []bool
	DynTotal   uint64

	GoldenOutput []byte
	GoldenExit   int64
	GoldenInstrs uint64
	Profile      []uint64

	// Replay state (UseSnapshots): golden-run snapshots in capture order
	// and, parallel to them, the candidate-execution count each one has
	// already passed — monotone, so the attempt loop can binary-search
	// for the latest snapshot at-or-before a trigger.
	snaps     []*machine.Snapshot
	snapCands []uint64
	stats     *telemetry.ReplayStats

	// Obs, when non-nil, receives replay-path metrics (hit/miss counts,
	// skipped/replayed instruction totals, restore-distance histogram).
	// Purely observational: it never influences an attempt.
	Obs *obs.Metrics

	// compiled (UseCompiled), when non-nil, runs untraced attempts on the
	// pre-decoded dispatch engine instead of the simulator. Traced
	// attempts always use the simulator — the tracer is not compiled in.
	compiled *mc.Program
}

// UseCompiled arms the pre-decoded dispatch engine for untraced
// attempts. The compiled program must be built from the injector's own
// lowered program; outcomes stay byte-identical to the simulator.
func (j *Injector) UseCompiled(cp *mc.Program) { j.compiled = cp }

// CaptureSnapshots runs the golden execution once more with a snapshot
// sink armed and returns the captured snapshots in execution order. The
// run is deterministic, so the snapshots are consistent with any
// injector built over the same lowered program.
func CaptureSnapshots(prog *x86.Program, layoutImage []byte, layoutBase uint64, stride uint64) (snaps []*machine.Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			snaps, err = nil, fmt.Errorf("pinfi snapshot run panic: %v", r)
		}
	}()
	var out bytes.Buffer
	m := machine.New(prog, layoutImage, layoutBase, &out)
	m.Profile = make([]uint64, len(prog.Instrs))
	m.SnapshotEvery = stride
	m.SnapshotSink = func(s *machine.Snapshot) { snaps = append(snaps, s) }
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("pinfi snapshot run: %w", err)
	}
	return snaps, nil
}

// UseSnapshots arms fast-forward replay: subsequent InjectAt calls
// restore the latest snapshot at-or-before their trigger and replay only
// the residual tail. Outcomes, activation, and output stay byte-identical
// to full re-execution. stats (nil-safe) receives hit/miss accounting.
func (j *Injector) UseSnapshots(snaps []*machine.Snapshot, stats *telemetry.ReplayStats) {
	j.snaps = snaps
	j.stats = stats
	j.snapCands = make([]uint64, len(snaps))
	for i, s := range snaps {
		j.snapCands[i] = s.CandCount(j.Candidates)
	}
}

// snapBefore returns the index of the latest snapshot whose candidate
// baseline is at or below trigger, or -1.
func (j *Injector) snapBefore(trigger uint64) int {
	lo, hi := 0, len(j.snaps)
	for lo < hi {
		mid := (lo + hi) / 2
		if j.snapCands[mid] <= trigger {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// New profiles the program once and prepares an injector for the
// category. An unexpected machine panic during the golden run is
// converted to an error rather than crashing the campaign.
func New(prog *x86.Program, layoutImage []byte, layoutBase uint64, cat fault.Category) (inj *Injector, err error) {
	defer func() {
		if r := recover(); r != nil {
			inj, err = nil, fmt.Errorf("pinfi golden run panic: %v", r)
		}
	}()
	var out bytes.Buffer
	m := machine.New(prog, layoutImage, layoutBase, &out)
	profile := make([]uint64, len(prog.Instrs))
	m.Profile = profile
	rc, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("pinfi golden run: %w", err)
	}
	cand := Candidates(prog, cat)
	inj = &Injector{
		Prog:         prog,
		LayoutImage:  layoutImage,
		LayoutBase:   layoutBase,
		Cat:          cat,
		Candidates:   cand,
		DynTotal:     CountDynamic(profile, cand),
		GoldenOutput: out.Bytes(),
		GoldenExit:   rc,
		GoldenInstrs: m.Executed(),
		Profile:      profile,
	}
	if inj.DynTotal == 0 {
		return nil, fmt.Errorf("%w (%s)", ErrNoCandidates, cat)
	}
	return inj, nil
}

// Result is the outcome of one injected run.
type Result struct {
	Outcome   fault.Outcome
	Output    []byte
	Exit      int64
	Err       error
	Injection *machine.Injection

	// Trigger is the dynamic candidate index that was corrupted.
	Trigger uint64
	// Spans is the fault-propagation skeleton (traced attempts only):
	// inject site, first tainted load/store/branch, and the outcome edge.
	Spans []telemetry.TraceSpan
}

// InjectOne performs a single fault injection at a uniformly random
// dynamic candidate instance.
func (j *Injector) InjectOne(rng *rand.Rand) *Result {
	trigger := uint64(rng.Int63n(int64(j.DynTotal)))
	return j.injectAt(trigger, rng, false)
}

// InjectOneTraced is InjectOne with fault-propagation tracing armed. The
// tracer is purely observational — it consumes no randomness and the
// outcome is byte-identical to the untraced draw.
func (j *Injector) InjectOneTraced(rng *rand.Rand) *Result {
	trigger := uint64(rng.Int63n(int64(j.DynTotal)))
	return j.injectAt(trigger, rng, true)
}

// InjectAt injects at a specific dynamic candidate index. When snapshots
// are armed, the attempt restores the latest snapshot at-or-before the
// trigger and replays only the residual tail; otherwise it re-executes
// from instruction zero. Both paths produce byte-identical results under
// the same rng.
func (j *Injector) InjectAt(trigger uint64, rng *rand.Rand) *Result {
	return j.injectAt(trigger, rng, false)
}

func (j *Injector) injectAt(trigger uint64, rng *rand.Rand, traced bool) *Result {
	injection := &machine.Injection{
		Candidates:   j.Candidates,
		TriggerIndex: trigger,
		Rng:          rng,
	}
	var tr *machine.Tracer
	if traced {
		tr = machine.NewTracer()
	}
	// Untraced attempts run on the compiled engine when armed; the
	// tracer is simulator-only instrumentation, so traced attempts stay
	// on the simulator (both are byte-identical).
	useCompiled := j.compiled != nil && !traced
	budget := j.GoldenInstrs*HangFactor + 1_000_000
	var out bytes.Buffer
	var rc int64
	var err error
	var executed uint64
	if i := j.snapBefore(trigger); i >= 0 {
		s := j.snaps[i]
		out.Write(j.GoldenOutput[:s.OutLen])
		if useCompiled {
			e := mc.NewFromSnapshot(j.compiled, s, &out)
			e.SetCandCount(j.snapCands[i])
			e.MaxInstrs = budget
			e.Inject = injection
			rc, err = e.Resume()
			executed = e.Executed()
		} else {
			m := machine.NewFromSnapshot(j.Prog, s, &out)
			m.SetCandCount(j.snapCands[i])
			m.MaxInstrs = budget
			m.Inject = injection
			m.Trace = tr
			rc, err = m.Resume()
			executed = m.Executed()
		}
		j.stats.Hit(s.Executed, executed-s.Executed)
		if o := j.Obs; o != nil {
			o.ReplayHits.Inc()
			o.InstrsSkipped.Add(s.Executed)
			o.InstrsReplayed.Add(executed - s.Executed)
			o.RestoreInstrs.Observe(float64(executed - s.Executed))
		}
	} else {
		if useCompiled {
			e := mc.New(j.compiled, &out)
			e.MaxInstrs = budget
			e.Inject = injection
			rc, err = e.Run()
			executed = e.Executed()
		} else {
			m := machine.New(j.Prog, j.LayoutImage, j.LayoutBase, &out)
			m.MaxInstrs = budget
			m.Inject = injection
			m.Trace = tr
			rc, err = m.Run()
			executed = m.Executed()
		}
		if j.snaps != nil {
			j.stats.Miss(executed)
			if o := j.Obs; o != nil {
				o.ReplayMisses.Inc()
				o.RestoreInstrs.Observe(float64(executed))
			}
		}
	}
	if useCompiled {
		if o := j.Obs; o != nil {
			o.CompiledAttempts.Inc()
		}
	}
	res := &Result{Output: out.Bytes(), Exit: rc, Err: err, Injection: injection, Trigger: trigger}
	res.Outcome = classify(j.GoldenOutput, j.GoldenExit, res, injection.Happened && injection.Activated)
	if tr != nil {
		for _, s := range tr.Spans {
			res.Spans = append(res.Spans, telemetry.TraceSpan{Kind: s.Kind, Site: s.Site, At: s.At})
		}
		res.Spans = append(res.Spans, telemetry.TraceSpan{
			Kind: "outcome", Site: res.Outcome.String(), At: executed,
		})
	}
	return res
}

func classify(goldenOut []byte, goldenExit int64, res *Result, activated bool) fault.Outcome {
	switch {
	case res.Err == machine.ErrHang:
		return fault.OutcomeHang
	case res.Err != nil:
		return fault.OutcomeCrash
	// A corrupted output always counts as an (activated) SDC, even if the
	// activation tracker somehow missed the read: the fault demonstrably
	// influenced execution.
	case !bytes.Equal(res.Output, goldenOut) || res.Exit != goldenExit:
		return fault.OutcomeSDC
	case !activated:
		return fault.OutcomeNotActivated
	default:
		return fault.OutcomeBenign
	}
}

package obs

import "runtime"

// RegisterBuildInfo publishes the producing build as an info-style
// gauge — hlfi_build_info{go="go1.22.x",engine="...",adaptive="..."} 1
// — so every scrape (and, via the flight-recorder header, every trace
// artifact) identifies the go toolchain, compiled-engine signature, and
// adaptive-sampling signature that produced it. Nil-safe; re-registering
// the same labels is idempotent.
func RegisterBuildInfo(r *Registry, engine, adaptive string) {
	if r == nil {
		return
	}
	r.Gauge(Label("hlfi_build_info", "go", runtime.Version(), "engine", engine, "adaptive", adaptive),
		"Build identity of this process (info metric; value is always 1).").Set(1)
}

package obs

// Bucket layouts. Attempt latencies run from tens of microseconds (a
// snapshot-replayed attempt on a small workload) to seconds (a
// hang-budget exhaustion); restore distance is the residual tail
// replayed after a snapshot restore, in dynamic instructions; cell
// durations span quick probe cells to multi-minute N=1000 cells.
var (
	AttemptSecondsBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	RestoreInstrsBuckets = []float64{
		1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 5e6, 1e7, 5e7,
	}
	CellSecondsBuckets = []float64{
		0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600,
	}
)

// Metrics is the instrument set of a fault-injection study — every
// series the /metrics endpoint exposes, pre-registered so hot paths
// never touch the registry. A nil *Metrics is the disabled state;
// instrumented code guards updates with a single nil check and every
// instrument method is itself nil-safe.
type Metrics struct {
	reg *Registry

	// Attempt-level counters (updated from the campaign loops).
	Attempts  *Counter
	Activated *Counter
	SimFaults *Counter
	Benign    *Counter
	SDC       *Counter
	Crash     *Counter
	Hang      *Counter
	NotAct    *Counter

	// Cell-level progress (updated from the study scheduler).
	CellsPlanned  *Gauge
	CellsInFlight *Gauge
	CellsDone     *Counter
	CellsSkipped  *Counter
	CellsResumed  *Counter

	// Snapshot-replay accounting (updated from the injectors and the
	// snapshot cache).
	ReplayHits             *Counter
	ReplayMisses           *Counter
	InstrsSkipped          *Counter
	InstrsReplayed         *Counter
	SnapshotCacheBytes     *Gauge
	SnapshotCacheSnapshots *Gauge
	SnapshotEvictions      *Counter

	// Compiled-engine accounting (updated from the injectors and the
	// compiled-program cache).
	CompiledAttempts  *Counter
	CompiledFallbacks *Counter

	// Fault-propagation tracing.
	TraceAttempts *Counter
	TraceSpans    *Counter

	// Adaptive-sampling accounting (updated when the round-2
	// reallocation plan is computed).
	AdaptiveConverged *Counter
	AdaptiveExtended  *Counter
	AdaptiveSaved     *Counter
	AdaptiveGranted   *Counter

	// Result-warehouse accounting (updated by the warehouse store the
	// CLI wires these into: lookup hits/misses and completed stores).
	WarehouseHits   *Counter
	WarehouseMisses *Counter
	WarehouseStores *Counter

	// Distributions.
	AttemptSeconds *Histogram
	RestoreInstrs  *Histogram
	CellSeconds    *Histogram
}

// New builds the study instrument set over a fresh registry.
func New() *Metrics {
	r := NewRegistry()
	return &Metrics{
		reg: r,

		Attempts:  r.Counter("hlfi_attempts_total", "Injection attempts drawn."),
		Activated: r.Counter("hlfi_activated_total", "Attempts whose fault activated (read before overwrite)."),
		SimFaults: r.Counter("hlfi_sim_faults_total", "Contained simulator panics."),
		Benign:    r.Counter(`hlfi_outcomes_total{outcome="benign"}`, "Attempt outcomes by class."),
		SDC:       r.Counter(`hlfi_outcomes_total{outcome="sdc"}`, "Attempt outcomes by class."),
		Crash:     r.Counter(`hlfi_outcomes_total{outcome="crash"}`, "Attempt outcomes by class."),
		Hang:      r.Counter(`hlfi_outcomes_total{outcome="hang"}`, "Attempt outcomes by class."),
		NotAct:    r.Counter(`hlfi_outcomes_total{outcome="not-activated"}`, "Attempt outcomes by class."),

		CellsPlanned:  r.Gauge("hlfi_cells_planned", "Campaign cells in the study plan."),
		CellsInFlight: r.Gauge("hlfi_cells_in_flight", "Campaign cells currently executing."),
		CellsDone:     r.Counter("hlfi_cells_done_total", "Campaign cells completed."),
		CellsSkipped:  r.Counter("hlfi_cells_skipped_total", "Campaign cells soft-skipped (no candidates, not activated, deadline)."),
		CellsResumed:  r.Counter("hlfi_cells_resumed_total", "Campaign cells restored from a checkpoint."),

		ReplayHits:             r.Counter("hlfi_replay_hits_total", "Attempts fast-forwarded from a snapshot."),
		ReplayMisses:           r.Counter("hlfi_replay_misses_total", "Attempts executed from instruction zero with replay armed."),
		InstrsSkipped:          r.Counter("hlfi_replay_instrs_skipped_total", "Dynamic instructions skipped by snapshot restores."),
		InstrsReplayed:         r.Counter("hlfi_replay_instrs_replayed_total", "Dynamic instructions replayed after snapshot restores."),
		SnapshotCacheBytes:     r.Gauge("hlfi_snapshot_cache_bytes", "Accounted bytes held by the snapshot cache."),
		SnapshotCacheSnapshots: r.Gauge("hlfi_snapshot_cache_snapshots", "Snapshots held by the snapshot cache."),
		SnapshotEvictions:      r.Counter("hlfi_snapshot_evictions_total", "Snapshot cache entries evicted under the memory budget."),

		CompiledAttempts:  r.Counter("hlfi_compiled_attempts_total", "Attempts executed by a compiled engine instead of the interpreter."),
		CompiledFallbacks: r.Counter("hlfi_compiled_fallbacks_total", "Programs that failed to compile and fell back to the interpreter."),

		TraceAttempts: r.Counter("hlfi_trace_attempts_total", "Attempts that recorded a fault-propagation trace."),
		TraceSpans:    r.Counter("hlfi_trace_spans_total", "Spans recorded across all attempt traces."),

		AdaptiveConverged: r.Counter("hlfi_adaptive_cells_converged_total", "Cells the early-stopping rule ended before their activation target."),
		AdaptiveExtended:  r.Counter("hlfi_adaptive_cells_extended_total", "Cells granted extra budget by the round-2 reallocation plan."),
		AdaptiveSaved:     r.Counter("hlfi_adaptive_saved_activated_total", "Activated-injection budget donated by early-stopped cells."),
		AdaptiveGranted:   r.Counter("hlfi_adaptive_granted_activated_total", "Activated-injection budget granted to extended cells."),

		WarehouseHits:   r.Counter("hlfi_warehouse_hits_total", "Cells resolved from the content-addressed result warehouse."),
		WarehouseMisses: r.Counter("hlfi_warehouse_misses_total", "Warehouse lookups that missed (cell executed)."),
		WarehouseStores: r.Counter("hlfi_warehouse_stores_total", "Cell records persisted to the result warehouse."),

		AttemptSeconds: r.Histogram("hlfi_attempt_seconds", "Injection attempt latency in seconds.", AttemptSecondsBuckets),
		RestoreInstrs:  r.Histogram("hlfi_replay_restore_instrs", "Replay restore distance: dynamic instructions replayed after the snapshot restore of one attempt.", RestoreInstrsBuckets),
		CellSeconds:    r.Histogram("hlfi_cell_seconds", "Campaign cell duration (scan + injection loop) in seconds.", CellSecondsBuckets),
	}
}

// SetShard publishes the worker's shard spec as an info-style series
// (hlfi_shard_info{shard="1/3"} 1), so scrapes from a fleet of shard
// workers stay distinguishable after aggregation. Nil-safe; the series
// exists only on sharded runs.
func (m *Metrics) SetShard(spec string) {
	if m == nil {
		return
	}
	m.reg.Gauge(Label("hlfi_shard_info", "shard", spec),
		"Shard spec of this worker (info metric; value is always 1).").Set(1)
}

// Registry exposes the backing registry (nil on a nil Metrics).
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Outcome maps a fault outcome's string form to its counter, nil (a
// no-op counter) for unknown names or a nil Metrics.
func (m *Metrics) Outcome(name string) *Counter {
	if m == nil {
		return nil
	}
	switch name {
	case "benign":
		return m.Benign
	case "sdc":
		return m.SDC
	case "crash":
		return m.Crash
	case "hang":
		return m.Hang
	case "not-activated":
		return m.NotAct
	}
	return nil
}

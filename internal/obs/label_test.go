package obs

import (
	"strings"
	"testing"
)

func TestLabelEscaping(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", `m{k="plain"}`},
		{`back\slash`, `m{k="back\\slash"}`},
		{`quo"te`, `m{k="quo\"te"}`},
		{"line\nfeed", `m{k="line\nfeed"}`},
		{"all\\\"\nthree", `m{k="all\\\"\nthree"}`},
	} {
		if got := Label("m", "k", tc.in); got != tc.want {
			t.Errorf("Label(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if got := Label("m", "a", "1", "b", "2"); got != `m{a="1",b="2"}` {
		t.Errorf("multi-pair Label = %s", got)
	}
}

// TestHostileLabelValuesRenderClean is the regression test for the
// exposition-format escaping fix: a benchmark/worker name carrying
// backslashes, quotes, and newlines must render as one well-formed
// series line, not corrupt the scrape.
func TestHostileLabelValuesRenderClean(t *testing.T) {
	r := NewRegistry()
	hostile := "w\"1\\x\ny"
	r.Counter(Label("hlfi_fleet_worker_cells_total", "worker", hostile), "help").Add(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `hlfi_fleet_worker_cells_total{worker="w\"1\\x\ny"} 3` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped series line %q:\n%s", want, out)
	}
	// Every line must be a comment or a single series sample — a raw
	// newline inside a label value would produce an orphan line.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "hlfi_fleet_worker_cells_total{") {
			t.Fatalf("orphan exposition line %q — label value leaked a newline", line)
		}
	}
}

func TestCounterStore(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Store(3)
	if c.Value() != 3 {
		t.Fatalf("Store(3) left %d", c.Value())
	}
	var nilc *Counter
	nilc.Store(9) // must not panic
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, "sig-e", "sig-a")
	RegisterBuildInfo(r, "sig-e", "sig-a") // idempotent

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE hlfi_build_info gauge") {
		t.Fatalf("build info family missing:\n%s", out)
	}
	if !strings.Contains(out, `engine="sig-e"`) || !strings.Contains(out, `adaptive="sig-a"`) ||
		!strings.Contains(out, `go="go1.`) {
		t.Fatalf("build info labels missing:\n%s", out)
	}
	if strings.Count(out, "hlfi_build_info{") != 1 {
		t.Fatalf("build info registered more than once:\n%s", out)
	}
	RegisterBuildInfo(nil, "e", "a") // nil-safe
}

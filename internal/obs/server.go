package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hlfi/internal/obs/trace"
)

// Server is the live observability endpoint of a running campaign:
//
//	/metrics       Prometheus text exposition of the metrics registry
//	/statusz       JSON study status (per-cell progress, outcome rates
//	               with Wilson intervals)
//	/debug/pprof/  net/http/pprof handlers for CPU and heap profiling
//
// The server owns one goroutine and exists only when explicitly started
// (the -status flag); a study without it runs exactly the code it ran
// before this package existed.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (":8080", "127.0.0.1:0", ...) and serves
// the registry and the status snapshot returned by status (which may be
// nil: /statusz then serves an empty object). The pprof handlers are
// wired onto the server's own mux, never the default one.
func StartServer(addr string, reg *Registry, status func() any) (*Server, error) {
	return StartServerTrace(addr, reg, status, nil)
}

// StartServerTrace is StartServer with a trace recorder mounted at
// /tracez (nil recorder: /tracez reports tracing off).
func StartServerTrace(addr string, reg *Registry, status func() any, rec *trace.Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: MuxTrace(reg, status, rec), ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Mux builds the observability handler StartServer serves, for callers
// that run their own HTTP server and want /metrics, /statusz, and
// /debug/pprof/ alongside their own routes (the fleet coordinator
// mounts it under "/" next to its lease endpoints). status may be nil;
// /statusz then serves an empty object.
func Mux(reg *Registry, status func() any) *http.ServeMux {
	return MuxTrace(reg, status, nil)
}

// MuxTrace is Mux plus the /tracez timeline endpoint (HTML by default,
// ?format=json, ?format=chrome for the Perfetto-compatible export). A
// nil recorder serves a "tracing off" hint rather than omitting the
// route, so scripts can probe a fleet for tracing support.
func MuxTrace(reg *Registry, status func() any, rec *trace.Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/tracez", trace.Handler(rec))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var v any = struct{}{}
		if status != nil {
			v = status()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "hlfi campaign observability\n\n/metrics\n/statusz\n/tracez\n/debug/pprof/\n")
	})
	return mux
}

// Addr is the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// drainTimeout bounds how long Close waits for in-flight scrapes. The
// linger window is the moment scrapers read a short study's final
// state, so a request caught mid-response must be allowed to finish —
// but study shutdown must never hang on a stuck client.
const drainTimeout = 2 * time.Second

// Close stops the server, draining in-flight requests first: a
// /metrics or /statusz scrape racing study shutdown reads a complete
// body instead of a severed connection. Requests still open after
// drainTimeout are forcibly closed. Nil-safe, so a disabled endpoint
// needs no guard at shutdown.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Drain deadline hit (or shutdown failed): sever what remains.
		_ = s.srv.Close()
		return err
	}
	return nil
}

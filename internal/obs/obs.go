// Package obs is the campaign observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) rendered
// in the Prometheus text exposition format, plus the live HTTP endpoint
// that serves it alongside a JSON study status and net/http/pprof.
//
// The package is built for a zero-cost disabled path: every instrument
// method is safe on a nil receiver and compiles to a single nil check,
// so instrumented code can hold nil instruments when observability is
// off. Updates are lock-free atomics; rendering takes the registry lock
// only to walk the instrument list.
//
// Nothing here may influence campaign results: instruments carry timing
// and counts out of the run, never values back into it.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store replaces the count with an absolute value. It exists for
// federation: a coordinator mirroring a worker's cumulative snapshot
// re-publishes the remote total rather than accumulating deltas.
func (c *Counter) Store(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are nil-safe no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetUint64 replaces the gauge value, clamping to the int64 range.
func (g *Gauge) SetUint64(n uint64) {
	if n > math.MaxInt64 {
		n = math.MaxInt64
	}
	g.Set(int64(n))
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks their sum, Prometheus-style:
// cumulative on render, per-bucket atomics on observe. All methods are
// nil-safe no-ops.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string // full series name, may carry {label="value"} pairs
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// family is the metric name with any label set stripped — the unit of
// # HELP / # TYPE lines in the exposition format.
func (m *metric) family() string {
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		return m.name[:i]
	}
	return m.name
}

// Registry holds named instruments and renders them. A nil *Registry is
// fully usable: it hands out nil instruments and renders nothing, which
// is the zero-cost disabled path.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register returns the existing metric under name or adds a new one.
// A name registered twice with a different kind is a programming error.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics = append(r.metrics, m)
	r.byName[name] = m
	return m
}

// Counter registers (or finds) a counter. Nil registry returns nil.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindCounter)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or finds) a gauge. Nil registry returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindGauge)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram registers (or finds) a histogram with the given ascending
// upper bucket bounds (+Inf is implicit). Nil registry returns nil.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kindHistogram)
	if m.h == nil {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4), sorted by series name with one
// # HELP/# TYPE pair per metric family. Nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })

	var sb strings.Builder
	seen := make(map[string]bool)
	for _, m := range ms {
		fam := m.family()
		if !seen[fam] {
			seen[fam] = true
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam, m.help)
			fmt.Fprintf(&sb, "# TYPE %s %s\n", fam, typeName(m.kind))
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&sb, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&sb, "%s %d\n", m.name, m.g.Value())
		case kindHistogram:
			var cum uint64
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", m.name, formatFloat(b), cum)
			}
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.h.Count())
			fmt.Fprintf(&sb, "%s_sum %s\n", m.name, formatFloat(m.h.Sum()))
			fmt.Fprintf(&sb, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func typeName(k metricKind) string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label builds a full series name with a label set — name{k="v",...} —
// escaping each value per the text exposition format 0.0.4: backslash,
// double quote, and line feed become \\, \", and \n. Every labeled
// series name in the registry must come through here, or a hostile
// benchmark/worker name ("bench\"x\n") would corrupt the exposition.
// Pairs are key1, value1, key2, value2, ...; an odd trailing key is a
// programming error.
func Label(name string, pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("obs: Label requires key/value pairs")
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(pairs[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

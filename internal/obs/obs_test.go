package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.SetUint64(4)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Error("nil registry handed out instruments")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry render: %v", err)
	}
	var m *Metrics
	if m.Registry() != nil {
		t.Error("nil metrics has a registry")
	}
	m.Outcome("sdc").Inc() // must not panic
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	if r.Counter("c_total", "a counter") != c {
		t.Error("re-registering a counter returned a new instrument")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Dec()
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	g.SetUint64(^uint64(0))
	if g.Value() <= 0 {
		t.Errorf("uint64 overflow clamped to %d, want max int64", g.Value())
	}

	h := r.Histogram("h", "a histogram", []float64{1, 10})
	for _, x := range []float64{0.5, 1, 2, 100} {
		h.Observe(x)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if h.Sum() != 103.5 {
		t.Errorf("histogram sum = %v, want 103.5", h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("hlfi_attempts_total", "Attempts.").Add(12)
	r.Counter(`hlfi_outcomes_total{outcome="sdc"}`, "Outcomes.").Add(3)
	r.Counter(`hlfi_outcomes_total{outcome="crash"}`, "Outcomes.").Add(4)
	r.Gauge("hlfi_cells_in_flight", "In flight.").Set(2)
	h := r.Histogram("hlfi_attempt_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE hlfi_attempts_total counter\n",
		"hlfi_attempts_total 12\n",
		`hlfi_outcomes_total{outcome="crash"} 4` + "\n",
		`hlfi_outcomes_total{outcome="sdc"} 3` + "\n",
		"# TYPE hlfi_cells_in_flight gauge\n",
		"hlfi_cells_in_flight 2\n",
		"# TYPE hlfi_attempt_seconds histogram\n",
		`hlfi_attempt_seconds_bucket{le="0.1"} 1` + "\n",
		`hlfi_attempt_seconds_bucket{le="1"} 2` + "\n",
		`hlfi_attempt_seconds_bucket{le="+Inf"} 3` + "\n",
		"hlfi_attempt_seconds_sum 5.55\n",
		"hlfi_attempt_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One HELP/TYPE pair per family even with two labeled series.
	if n := strings.Count(out, "# TYPE hlfi_outcomes_total"); n != 1 {
		t.Errorf("outcomes family has %d TYPE lines, want 1", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(2.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000*2.5 {
		t.Errorf("sum = %v, want %v", h.Sum(), 8000*2.5)
	}
}

func TestMetricsOutcomeMapping(t *testing.T) {
	m := New()
	for _, name := range []string{"benign", "sdc", "crash", "hang", "not-activated"} {
		if m.Outcome(name) == nil {
			t.Errorf("no counter for outcome %q", name)
		}
		m.Outcome(name).Inc()
	}
	if m.Outcome("nonsense") != nil {
		t.Error("unknown outcome mapped to a counter")
	}
	if m.Crash.Value() != 1 || m.NotAct.Value() != 1 {
		t.Error("outcome counters not wired to the named fields")
	}
}

func TestServerEndpoints(t *testing.T) {
	m := New()
	m.Attempts.Add(42)
	status := func() any {
		return map[string]int{"cellsDone": 7}
	}
	srv, err := StartServer("127.0.0.1:0", m.Registry(), status)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "hlfi_attempts_total 42") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/statusz"); !strings.Contains(out, `"cellsDone": 7`) {
		t.Errorf("/statusz missing status JSON:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/"); !strings.Contains(out, "/statusz") {
		t.Errorf("index page missing endpoint list:\n%s", out)
	}
}

// TestCloseDrainsInFlightScrape is the regression test for the severed-
// scrape bug: Close used http.Server.Close, which cut connections
// mid-response, so a scraper racing study shutdown read a truncated
// body. Close must drain: a request already in its handler when Close
// begins completes with a full body, and Close returns only after it
// has.
func TestCloseDrainsInFlightScrape(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	status := func() any {
		close(inHandler)
		<-release
		return map[string]string{"state": "complete-body"}
	}
	srv, err := StartServer("127.0.0.1:0", New().Registry(), status)
	if err != nil {
		t.Fatal(err)
	}

	body := make(chan string, 1)
	fail := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/statusz", srv.Addr()))
		if err != nil {
			fail <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			fail <- err
			return
		}
		body <- string(b)
	}()
	<-inHandler

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	// Close must not return while the scrape is still in its handler.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) with a scrape in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case b := <-body:
		if !strings.Contains(b, "complete-body") {
			t.Errorf("scrape body truncated: %q", b)
		}
	case err := <-fail:
		t.Fatalf("in-flight scrape severed by Close: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}
	if err := <-closed; err != nil {
		t.Errorf("Close = %v after clean drain, want nil", err)
	}

	// After Close the listener is gone and a nil server stays a no-op.
	if _, err := http.Get(fmt.Sprintf("http://%s/statusz", srv.Addr())); err == nil {
		t.Error("server still accepting connections after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

package trace

import (
	"strings"
	"testing"
)

// The /tracez HTML timeline interpolates strings a remote worker
// controls: worker names, outcomes, error messages, and span names all
// arrive over the network in heartbeat and completion span batches, and
// the trace header is caller-supplied. obs.Label hardened these for the
// Prometheus exposition, but label escaping is not HTML escaping — this
// is the regression test (companion to internal/obs/label_test.go) that
// every dynamic string goes through the htmlEscape chokepoint.
func TestWriteHTMLEscapesHostileStrings(t *testing.T) {
	r, err := New(Options{
		Capacity: 64,
		Head: Header{
			Go:       "go<b>1.bold</b>",
			Engine:   `on"><script>alert(1)</script>`,
			Adaptive: `eps='0.05'`,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const worker = `w1"><script>alert("w")</script>`
	r.Emit(Record{Kind: KindCampaign, Name: "study", Start: 0, End: 5e6, Outcome: "done"})
	r.Emit(Record{
		Kind:    KindLease,
		Name:    `quantumm/llfi/instr"><img src=x onerror=alert(2)>`,
		Worker:  worker,
		Grant:   1,
		Start:   1e6,
		End:     2e6,
		Outcome: `done"><svg onload=alert(3)>`,
		Err:     `lease "lost" & <dropped>`,
	})
	// A kind outside spanColors exercises the fallback color path and
	// flows into the slice title like any other dynamic string.
	r.Emit(Record{Kind: "<hostile-kind>", Name: "quantumm/llfi/instr",
		Start: 2e6, End: 3e6})

	var sb strings.Builder
	if err := r.WriteHTML(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Without a raw '<' no element can form, so event-handler text like
	// "onerror=" is inert once its surrounding tag is escaped; the
	// element openers are what must never survive.
	for _, raw := range []string{
		"<script", "</script", "<img", "<svg",
		"<b>1.bold", "<hostile-kind>", "<dropped>", worker,
	} {
		if strings.Contains(out, raw) {
			t.Errorf("WriteHTML leaked hostile input unescaped: %q", raw)
		}
	}
	// The escaped forms must still be there — escaping, not dropping.
	for _, escaped := range []string{
		"&lt;script&gt;", "&lt;img src=x onerror=alert(2)&gt;",
		"&lt;hostile-kind&gt;", "&#34;lost&#34; &amp; &lt;dropped&gt;",
	} {
		if !strings.Contains(out, escaped) {
			t.Errorf("WriteHTML is missing the escaped form %q", escaped)
		}
	}
	// Attribute context: a hostile string must never close its
	// double-quoted attribute. Every literal '"' in the document has to
	// be markup the template wrote, so no escaped-input fragment may
	// contain one; html.EscapeString renders '"' as &#34;.
	if strings.Contains(out, `alert("w")`) {
		t.Error("hostile worker name broke out of its attribute")
	}
}

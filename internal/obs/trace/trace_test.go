package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	r, err := New(Options{TraceID: 7, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	root := r.Start(KindCampaign, "study")
	cell := r.StartChild(KindCell, "quantumm/llfi/instr", root)
	cell.Outcome = "done"
	cell.Grant = 2
	cell.Finish()
	root.Outcome = "done"
	root.Finish()

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d records, want 2", len(snap))
	}
	c, rt := snap[0], snap[1]
	if c.Kind != KindCell || rt.Kind != KindCampaign {
		t.Fatalf("finish order: got kinds %q, %q", c.Kind, rt.Kind)
	}
	if c.Trace != 7 || rt.Trace != 7 {
		t.Fatalf("trace ids = %d, %d, want 7", c.Trace, rt.Trace)
	}
	if c.Parent != rt.ID {
		t.Fatalf("cell parent = %d, want root id %d", c.Parent, rt.ID)
	}
	if c.Outcome != "done" || c.Grant != 2 {
		t.Fatalf("annotations lost: %+v", c)
	}
	if c.End < c.Start {
		t.Fatalf("end %d before start %d", c.End, c.Start)
	}
	// Double-finish is a no-op.
	cell.Finish()
	if got := len(r.Snapshot()); got != 2 {
		t.Fatalf("after double finish: %d records, want 2", got)
	}
}

func TestRingBound(t *testing.T) {
	r, err := New(Options{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := r.Start(KindRun, "cell")
		s.Grant = i
		s.Finish()
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	if snap[0].Grant != 6 || snap[3].Grant != 9 {
		t.Fatalf("ring kept grants %d..%d, want 6..9", snap[0].Grant, snap[3].Grant)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestWorkerIDNamespace(t *testing.T) {
	w, err := New(Options{Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws := w.Start(KindExec, "cell")
	cs := c.Start(KindLease, "cell")
	if ws.ID()&(1<<63) == 0 {
		t.Fatalf("worker span id %x missing namespace bit 63", ws.ID())
	}
	if cs.ID()&(1<<63) != 0 {
		t.Fatalf("coordinator span id %x has worker namespace bit", cs.ID())
	}
	if ws.ID() == cs.ID() {
		t.Fatal("worker and coordinator allocated the same span id")
	}
}

func TestWorkerOutbox(t *testing.T) {
	w, err := New(Options{Worker: "w1", TraceID: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := w.StartRemote(KindExec, "cell", 9, 42)
	s.Worker = "w1"
	s.Finish()
	batch := w.TakeBatch()
	if len(batch) != 1 {
		t.Fatalf("batch = %d records, want 1", len(batch))
	}
	if batch[0].Trace != 9 || batch[0].Parent != 42 {
		t.Fatalf("remote context lost: trace=%d parent=%d", batch[0].Trace, batch[0].Parent)
	}
	if got := w.TakeBatch(); len(got) != 0 {
		t.Fatalf("second TakeBatch = %d records, want 0", len(got))
	}

	// Coordinator ingests the batch verbatim.
	c, err := New(Options{TraceID: 9})
	if err != nil {
		t.Fatal(err)
	}
	c.Ingest(batch)
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].ID != batch[0].ID {
		t.Fatalf("ingest mangled the batch: %+v", snap)
	}
}

func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		s := r.Start(KindExec, "cell")
		s.Outcome = "done"
		s.Worker = "w"
		s.Finish()
		r.Emit(Record{Kind: KindScan})
		r.Ingest(nil)
		_ = r.TakeBatch()
		_ = r.TraceID()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder path allocates %.1f per op, want 0", allocs)
	}
}

func TestFlightRecorderFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r, err := New(Options{File: path, TraceID: 5,
		Head: Header{Go: "go1.22", Engine: "eng", N: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Start(KindCampaign, "study")
	s.Outcome = "done"
	s.Finish()
	if !r.FileIntact() {
		t.Fatal("flight recorder detached without a failure")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("flight recorder has no header line")
	}
	var hdr fileHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line not JSON: %v", err)
	}
	if hdr.Type != "flight-recorder" || hdr.Version != 1 || hdr.Trace != 5 ||
		hdr.Go != "go1.22" || hdr.Engine != "eng" || hdr.N != 8 || hdr.Seed != 1 {
		t.Fatalf("header = %+v", hdr)
	}
	if !sc.Scan() {
		t.Fatal("flight recorder has no span line")
	}
	var rec Record
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatalf("span line not JSON: %v", err)
	}
	if rec.Kind != KindCampaign || rec.Outcome != "done" {
		t.Fatalf("span record = %+v", rec)
	}
}

func TestFlightRecorderFailStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	r, err := New(Options{File: path})
	if err != nil {
		t.Fatal(err)
	}
	// Force the next append to fail by closing the fd out from under the
	// recorder, the same trick the checkpoint-writer tests use.
	r.file.Close()
	s := r.Start(KindCell, "cell")
	s.Finish()
	if r.FileIntact() {
		t.Fatal("write onto closed file did not detach the recorder")
	}
	// The in-memory timeline keeps working after detach.
	s2 := r.Start(KindCell, "cell2")
	s2.Finish()
	if got := len(r.Snapshot()); got != 2 {
		t.Fatalf("timeline after detach = %d records, want 2", got)
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close did not surface the sticky write error")
	}
}

func sampleRecorder(t *testing.T) *Recorder {
	t.Helper()
	r, err := New(Options{TraceID: 11, Head: Header{Go: "go1.22", Engine: "eng"}})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().UnixNano()
	r.Emit(Record{Kind: KindCampaign, Name: "study", Start: base, End: base + 5e6, Outcome: "done"})
	r.Emit(Record{Kind: KindCell, Name: "quantumm/llfi/instr", Start: base, End: base + 4e6, Outcome: "done"})
	r.Emit(Record{Kind: KindLease, Name: "quantumm/llfi/instr", Worker: "w1", Grant: 1,
		Start: base, End: base + 1e6, Outcome: "lease expiry", Err: "ttl"})
	r.Emit(Record{Kind: KindRetry, Name: "quantumm/llfi/instr", Retry: 1,
		Start: base + 1e6, End: base + 2e6})
	r.Emit(Record{Kind: KindExec, Name: "quantumm/llfi/instr", Worker: "w2", Grant: 2,
		Start: base + 2e6, End: base + 4e6, Outcome: "done"})
	return r
}

func TestWriteChrome(t *testing.T) {
	r := sampleRecorder(t)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	var xs, ms, retries int
	workers := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
			if ev["cat"] == KindRetry {
				retries++
			}
			if args, ok := ev["args"].(map[string]any); ok {
				if w, ok := args["worker"].(string); ok {
					workers[w] = true
				}
			}
		case "M":
			ms++
		}
	}
	if xs != 5 {
		t.Fatalf("chrome export has %d X events, want 5", xs)
	}
	if ms < 3 { // process_name + campaign lane + cell lane
		t.Fatalf("chrome export has %d M events, want >= 3", ms)
	}
	if retries != 1 {
		t.Fatalf("chrome export has %d retry slices, want 1", retries)
	}
	if !workers["w1"] || !workers["w2"] {
		t.Fatalf("worker attribution lost: %v", workers)
	}
}

func TestWriteJSON(t *testing.T) {
	r := sampleRecorder(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out export
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("json export not JSON: %v", err)
	}
	if out.Trace != 11 || len(out.Spans) != 5 || out.Header.Engine != "eng" {
		t.Fatalf("json export = trace %d, %d spans, engine %q",
			out.Trace, len(out.Spans), out.Header.Engine)
	}
}

func TestHandlerFormats(t *testing.T) {
	h := Handler(sampleRecorder(t))

	for _, tc := range []struct{ url, contentType, needle string }{
		{"/tracez", "text/html", "hlfi campaign trace"},
		{"/tracez?format=json", "application/json", "\"spans\""},
		{"/tracez?format=chrome", "application/json", "traceEvents"},
	} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", tc.url, nil))
		if rw.Code != 200 {
			t.Fatalf("%s: status %d", tc.url, rw.Code)
		}
		if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, tc.contentType) {
			t.Fatalf("%s: content type %q, want %q", tc.url, ct, tc.contentType)
		}
		if !strings.Contains(rw.Body.String(), tc.needle) {
			t.Fatalf("%s: body missing %q", tc.url, tc.needle)
		}
	}

	// Nil recorder: 404, never a 500.
	rw := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rw, httptest.NewRequest("GET", "/tracez", nil))
	if rw.Code != 404 {
		t.Fatalf("nil recorder handler: status %d, want 404", rw.Code)
	}
}

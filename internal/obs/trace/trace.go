// Package trace is the campaign distributed-tracing layer: a
// dependency-free span model covering the whole life of a study —
// campaign → cell → queue wait / lease / attempt-window → retry and
// adaptive-extension spans — with worker identity and outcome
// annotations on every span.
//
// The model is built for the fleet: span context (trace ID, parent span
// ID) rides inside lease grants, workers record their execution spans
// locally and piggyback the finished batch on heartbeats and
// completions, and the coordinator ingests them into one bounded
// in-memory timeline plus an optional append-only JSONL flight-recorder
// file that reuses the fail-stop checkpoint-writer discipline (header
// line first, fsync per append, sticky first write error, in-memory
// timeline survives a detached file).
//
// Like the rest of internal/obs, the disabled path is zero-cost: every
// method is safe on a nil *Recorder, Span is a value type whose nil-
// recorder operations allocate nothing, and spans consume no randomness
// — campaign results, checkpoints, and rendered reports are
// byte-identical with tracing on or off.
package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"
)

// Span kinds, from the outermost study span down to the per-cell
// lifecycle spans the timeline is made of.
const (
	// KindCampaign is the root span of one study.
	KindCampaign = "campaign"
	// KindCell covers one cell from first grant (or task start) to its
	// resolution.
	KindCell = "cell"
	// KindWait covers the queue time before a cell's first grant (and,
	// after an adaptive reopen, before its extension grant).
	KindWait = "wait"
	// KindLease covers one coordinator-side lease: grant to completion,
	// expiry, or failure.
	KindLease = "lease"
	// KindExec is the worker-side attempt window of one leased cell.
	KindExec = "exec"
	// KindBuild is a worker-side program build (benchmark cache miss).
	KindBuild = "build"
	// KindScan covers injector construction: the golden profiling run
	// plus the candidate scan.
	KindScan = "scan"
	// KindRun covers the injection loop of one cell.
	KindRun = "run"
	// KindRetry covers the backoff gap between a failed or expired lease
	// and the next grant.
	KindRetry = "retry"
	// KindExtension covers an adaptive round-2 extension: plan reopen to
	// final resolution.
	KindExtension = "extension"
)

// Record is one finished span — the wire, ring, and flight-recorder
// representation. Start and End are wall-clock UnixNano; the duration
// between them was measured monotonically by the process that owned the
// span.
type Record struct {
	Trace  uint64 `json:"trace"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Worker string `json:"worker,omitempty"`
	Start  int64  `json:"startNs"`
	End    int64  `json:"endNs"`

	// Outcome annotations.
	Outcome string `json:"outcome,omitempty"`
	Grant   int    `json:"grant,omitempty"`
	Retry   int    `json:"retry,omitempty"`
	Err     string `json:"err,omitempty"`
}

// Header identifies the producing build and study inside the flight
// recorder's first line and every export.
type Header struct {
	Go       string `json:"go,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Adaptive string `json:"adaptive,omitempty"`
	N        int    `json:"n,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// fileHeader is the flight recorder's first JSONL line.
type fileHeader struct {
	Type    string `json:"type"` // always "flight-recorder"
	Version int    `json:"v"`
	Trace   uint64 `json:"trace"`
	Header
	Start int64 `json:"startNs"`
}

// Options configures New.
type Options struct {
	// Worker, when non-empty, puts the recorder in worker mode: span IDs
	// are drawn from a per-worker namespace (bit 63 set, the fnv32a of
	// the name in the next 31 bits) so they never collide with the
	// coordinator's sequential IDs, and finished spans accumulate in an
	// outbox drained by TakeBatch for heartbeat/completion piggybacking.
	Worker string
	// Capacity bounds the in-memory ring (default 16384 spans); the
	// oldest spans are dropped, counted by Dropped.
	Capacity int
	// TraceID pins the trace identity (0: derived from the worker name
	// and the recorder's creation time — identification only, never fed
	// back into any result).
	TraceID uint64
	// File, when non-empty, arms the JSONL flight recorder at this path.
	File string
	// Head identifies the producing build/study in the flight-recorder
	// header and every export.
	Head Header
}

// Recorder collects finished spans: a bounded in-memory ring (the
// /tracez timeline), an optional worker outbox, and an optional
// fail-stop flight-recorder file. A nil *Recorder is fully usable and
// records nothing.
type Recorder struct {
	trace  uint64
	worker string
	head   Header

	mu      sync.Mutex
	next    uint64 // last allocated local span ID (pre-namespace)
	idBase  uint64 // worker-namespace bits OR-ed onto every allocated ID
	ring    []Record
	start   int // ring read position (oldest record)
	count   int
	outbox  []Record
	batch   bool
	dropped uint64

	file *os.File
	enc  *json.Encoder
	ferr error // sticky first flight-recorder write error
}

// New builds a recorder. The only error source is the flight-recorder
// file (creation or header write).
func New(o Options) (*Recorder, error) {
	if o.Capacity <= 0 {
		o.Capacity = 16384
	}
	r := &Recorder{
		trace:  o.TraceID,
		worker: o.Worker,
		head:   o.Head,
		ring:   make([]Record, o.Capacity),
		batch:  o.Worker != "",
	}
	if o.Worker != "" {
		h := fnv.New32a()
		h.Write([]byte(o.Worker))
		r.idBase = 1<<63 | uint64(h.Sum32()&0x7fffffff)<<32
	}
	if r.trace == 0 {
		h := fnv.New64a()
		h.Write([]byte(o.Worker))
		r.trace = h.Sum64() ^ uint64(time.Now().UnixNano())
		if r.trace == 0 {
			r.trace = 1
		}
	}
	if o.File != "" {
		f, err := os.OpenFile(o.File, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trace: flight recorder %s: %w", o.File, err)
		}
		r.file, r.enc = f, json.NewEncoder(f)
		hdr := fileHeader{Type: "flight-recorder", Version: 1, Trace: r.trace,
			Header: o.Head, Start: time.Now().UnixNano()}
		err = r.enc.Encode(hdr)
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: flight recorder %s: %w", o.File, err)
		}
	}
	return r, nil
}

// TraceID is the recorder's trace identity (0 on nil).
func (r *Recorder) TraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.trace
}

// Head returns the build/study header (zero on nil).
func (r *Recorder) Head() Header {
	if r == nil {
		return Header{}
	}
	return r.head
}

// allocID hands out the next span ID in this recorder's namespace.
func (r *Recorder) allocID() uint64 {
	r.next++
	return r.idBase | r.next
}

// Span is one open span. The zero value (and any span started on a nil
// recorder) is a no-op handle: annotating and finishing it does
// nothing and allocates nothing, which is the zero-cost disabled path.
// Annotation fields may be set any time before Finish.
type Span struct {
	rec    *Recorder
	trace  uint64
	id     uint64
	parent uint64
	kind   string
	name   string
	start  time.Time

	// Annotations copied into the Record at Finish.
	Worker  string
	Outcome string
	Grant   int
	Retry   int
	Err     string
}

// Start opens a root-level span on the recorder's own trace.
func (r *Recorder) Start(kind, name string) Span {
	return r.StartRemote(kind, name, 0, 0)
}

// StartChild opens a span under parent (same trace).
func (r *Recorder) StartChild(kind, name string, parent Span) Span {
	return r.StartRemote(kind, name, parent.trace, parent.id)
}

// StartRemote opens a span under an externally propagated context —
// the worker side of a lease grant, whose trace/span IDs crossed the
// wire. A zero traceID falls back to the recorder's own trace.
func (r *Recorder) StartRemote(kind, name string, traceID, parentID uint64) Span {
	if r == nil {
		return Span{}
	}
	if traceID == 0 {
		traceID = r.trace
	}
	r.mu.Lock()
	id := r.allocID()
	r.mu.Unlock()
	return Span{rec: r, trace: traceID, id: id, parent: parentID,
		kind: kind, name: name, start: time.Now()}
}

// ID is the span's identity (0 for a no-op span), for wire propagation.
func (s Span) ID() uint64 { return s.id }

// TraceID is the span's trace (0 for a no-op span).
func (s Span) TraceID() uint64 { return s.trace }

// Open reports whether the span is live (started and not finished).
func (s Span) Open() bool { return s.rec != nil }

// Finish records the span: its end is the wall-clock start plus the
// monotonically measured elapsed time. Finishing a no-op or
// already-finished span does nothing; after Finish the handle keeps its
// IDs (for parenting later spans) but is closed.
func (s *Span) Finish() {
	if s.rec == nil {
		return
	}
	start := s.start.UnixNano()
	rec := Record{
		Trace: s.trace, ID: s.id, Parent: s.parent,
		Kind: s.kind, Name: s.name, Worker: s.Worker,
		Start: start, End: start + int64(time.Since(s.start)),
		Outcome: s.Outcome, Grant: s.Grant, Retry: s.Retry, Err: s.Err,
	}
	r := s.rec
	s.rec = nil
	r.add(rec)
}

// Emit records an externally assembled span (e.g. a scan/run child
// span reconstructed from cell timing). Zero Trace and ID fields are
// filled in from the recorder.
func (r *Recorder) Emit(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if rec.Trace == 0 {
		rec.Trace = r.trace
	}
	if rec.ID == 0 {
		rec.ID = r.allocID()
	}
	r.mu.Unlock()
	r.add(rec)
}

// Ingest records a batch of remote spans (a worker's heartbeat or
// completion payload) verbatim: IDs were allocated in the worker's own
// namespace.
func (r *Recorder) Ingest(batch []Record) {
	if r == nil {
		return
	}
	for _, rec := range batch {
		r.add(rec)
	}
}

// add appends one finished record to the ring, the outbox, and the
// flight recorder.
func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	if r.count == len(r.ring) {
		r.ring[r.start] = rec
		r.start = (r.start + 1) % len(r.ring)
		r.dropped++
	} else {
		r.ring[(r.start+r.count)%len(r.ring)] = rec
		r.count++
	}
	if r.batch {
		r.outbox = append(r.outbox, rec)
	}
	if r.file != nil && r.ferr == nil {
		// Fail-stop discipline, same as the checkpoint writer: encode,
		// fsync, and on the first failure detach the file for good — the
		// in-memory timeline keeps accumulating.
		err := r.enc.Encode(rec)
		if err == nil {
			err = r.file.Sync()
		}
		if err != nil {
			r.ferr = fmt.Errorf("trace: flight recorder write: %w", err)
			r.file.Close()
		}
	}
	r.mu.Unlock()
}

// TakeBatch drains the worker outbox: the spans finished since the
// last call, ready to ride a heartbeat or completion. Nil (and
// non-worker recorders) return nothing.
func (r *Recorder) TakeBatch() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.outbox
	r.outbox = nil
	return out
}

// Snapshot copies the ring oldest-first (nil returns nothing).
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.start+i)%len(r.ring)])
	}
	return out
}

// Dropped counts spans evicted from the full ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// FileIntact reports whether the flight recorder is still attached: a
// file was armed and no write has failed. Recorders without a file
// report false.
func (r *Recorder) FileIntact() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.file != nil && r.ferr == nil
}

// Close closes the flight-recorder file, returning the sticky write
// error if one detached it. Nil-safe.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ferr != nil {
		return r.ferr
	}
	if r.file == nil {
		return nil
	}
	err := r.file.Close()
	r.file = nil
	return err
}

package trace

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strings"
)

// export is the /tracez?format=json payload.
type export struct {
	Trace   uint64   `json:"trace"`
	Header  Header   `json:"header"`
	Dropped uint64   `json:"dropped"`
	Spans   []Record `json:"spans"`
}

// timeline sorts a snapshot by start time (ties broken by ID so the
// order is stable) and returns it with the earliest start as epoch.
func timeline(recs []Record) ([]Record, int64) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	var epoch int64
	if len(recs) > 0 {
		epoch = recs[0].Start
	}
	return recs, epoch
}

// WriteJSON renders the timeline as one JSON object.
func (r *Recorder) WriteJSON(w io.Writer) error {
	recs, _ := timeline(r.Snapshot())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(export{Trace: r.TraceID(), Header: r.Head(),
		Dropped: r.Dropped(), Spans: recs})
}

// chromeEvent is one Chrome trace-event ("X" complete slice or "M"
// metadata), the format Perfetto and chrome://tracing load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the export envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneOf maps a span to its timeline lane: the campaign span gets lane
// 0, every other span shares the lane of its cell (span names are the
// cell identity "prog/level/category" across all cell-scoped kinds).
func laneOf(rec Record, lanes map[string]int, order *[]string) int {
	if rec.Kind == KindCampaign {
		return 0
	}
	if id, ok := lanes[rec.Name]; ok {
		return id
	}
	id := len(lanes) + 1
	lanes[rec.Name] = id
	*order = append(*order, rec.Name)
	return id
}

// chromeName labels one slice the way the timeline reads best: the
// kind, qualified by worker, grant, or retry number where that is the
// interesting part.
func chromeName(rec Record) string {
	switch rec.Kind {
	case KindLease, KindExec:
		if rec.Worker != "" {
			return fmt.Sprintf("%s %s#%d", rec.Kind, rec.Worker, rec.Grant)
		}
	case KindRetry:
		return fmt.Sprintf("retry #%d", rec.Retry)
	case KindBuild:
		return "build " + rec.Name
	}
	return rec.Kind
}

// WriteChrome renders the timeline in the Chrome trace-event format
// (load the file in Perfetto, chrome://tracing, or `perfetto
// trace_processor`). Timestamps are microseconds from the earliest
// span.
func (r *Recorder) WriteChrome(w io.Writer) error {
	recs, epoch := timeline(r.Snapshot())
	lanes := make(map[string]int)
	var order []string
	events := make([]chromeEvent, 0, len(recs)+len(recs)/4+2)
	for _, rec := range recs {
		tid := laneOf(rec, lanes, &order)
		args := map[string]any{"trace": rec.Trace, "span": rec.ID}
		if rec.Worker != "" {
			args["worker"] = rec.Worker
		}
		if rec.Outcome != "" {
			args["outcome"] = rec.Outcome
		}
		if rec.Grant > 0 {
			args["grant"] = rec.Grant
		}
		if rec.Retry > 0 {
			args["retry"] = rec.Retry
		}
		if rec.Err != "" {
			args["err"] = rec.Err
		}
		dur := float64(rec.End-rec.Start) / 1e3
		if dur < 0.001 {
			dur = 0.001 // Perfetto drops zero-width slices
		}
		events = append(events, chromeEvent{
			Name: chromeName(rec), Cat: rec.Kind, Ph: "X",
			TS: float64(rec.Start-epoch) / 1e3, Dur: dur,
			PID: 1, TID: tid, Args: args,
		})
	}
	meta := []chromeEvent{{Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "hlfi campaign"}}}
	meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "campaign"}})
	for _, name := range order {
		meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", PID: 1,
			TID: lanes[name], Args: map[string]any{"name": name}})
	}
	return json.NewEncoder(w).Encode(chromeTrace{
		TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"})
}

// spanColors maps kinds to the HTML timeline's bar colors.
var spanColors = map[string]string{
	KindCampaign:  "#546e7a",
	KindCell:      "#90a4ae",
	KindWait:      "#cfd8dc",
	KindLease:     "#42a5f5",
	KindExec:      "#66bb6a",
	KindBuild:     "#ab47bc",
	KindScan:      "#26c6da",
	KindRun:       "#9ccc65",
	KindRetry:     "#ef5350",
	KindExtension: "#ffa726",
}

// htmlEscape is the single escaping chokepoint for every dynamic string
// the /tracez HTML timeline interpolates. Worker names, outcomes, and
// error strings arrive over the network (heartbeat and completion span
// batches), so they are hostile input here: obs.Label escaped them for
// the Prometheus exposition, but that escaping is not HTML escaping.
// html.EscapeString covers both element text and double-quoted
// attribute values (it escapes &, <, >, ', and "); every fmt verb that
// renders a string in WriteHTML must go through this function.
func htmlEscape(s string) string { return html.EscapeString(s) }

// WriteHTML renders a minimal server-side timeline: one lane per cell,
// bars positioned by pure CSS percentages — no scripts, so it works in
// anything that renders HTML.
func (r *Recorder) WriteHTML(w io.Writer) error {
	recs, epoch := timeline(r.Snapshot())
	var end int64
	for _, rec := range recs {
		if rec.End > end {
			end = rec.End
		}
	}
	total := end - epoch
	if total <= 0 {
		total = 1
	}
	byLane := make(map[string][]Record)
	var order []string
	for _, rec := range recs {
		lane := "campaign"
		if rec.Kind != KindCampaign {
			lane = rec.Name
		}
		if _, ok := byLane[lane]; !ok {
			order = append(order, lane)
		}
		byLane[lane] = append(byLane[lane], rec)
	}

	var sb strings.Builder
	sb.WriteString("<!doctype html><html><head><meta charset=\"utf-8\"><title>hlfi /tracez</title><style>\n")
	sb.WriteString("body{font:13px monospace;margin:16px;background:#fafafa}\n")
	sb.WriteString(".lane{display:flex;align-items:center;margin:2px 0}\n")
	sb.WriteString(".label{width:220px;flex:none;overflow:hidden;text-overflow:ellipsis;white-space:nowrap}\n")
	sb.WriteString(".track{position:relative;height:18px;flex:1;background:#eceff1}\n")
	sb.WriteString(".span{position:absolute;top:1px;height:16px;min-width:2px;opacity:.9}\n")
	sb.WriteString("</style></head><body>\n")
	fmt.Fprintf(&sb, "<h3>hlfi campaign trace %d</h3>\n", r.TraceID())
	head := r.Head()
	fmt.Fprintf(&sb, "<p>%d spans (%d dropped) over %.3fs · go=%s engine=%s adaptive=%s · <a href=\"/tracez?format=json\">json</a> · <a href=\"/tracez?format=chrome\">chrome trace (open in Perfetto)</a></p>\n",
		len(recs), r.Dropped(), float64(total)/1e9,
		htmlEscape(head.Go), htmlEscape(head.Engine), htmlEscape(head.Adaptive))
	for _, lane := range order {
		fmt.Fprintf(&sb, "<div class=\"lane\"><div class=\"label\" title=\"%s\">%s</div><div class=\"track\">\n",
			htmlEscape(lane), htmlEscape(lane))
		for _, rec := range byLane[lane] {
			left := 100 * float64(rec.Start-epoch) / float64(total)
			width := 100 * float64(rec.End-rec.Start) / float64(total)
			color, ok := spanColors[rec.Kind]
			if !ok {
				color = "#78909c"
			}
			title := fmt.Sprintf("%s %s %.3fms", rec.Kind, chromeName(rec), float64(rec.End-rec.Start)/1e6)
			if rec.Outcome != "" {
				title += " outcome=" + rec.Outcome
			}
			if rec.Err != "" {
				title += " err=" + rec.Err
			}
			fmt.Fprintf(&sb, "<div class=\"span\" style=\"left:%.3f%%;width:%.3f%%;background:%s\" title=\"%s\"></div>\n",
				left, width, color, htmlEscape(title))
		}
		sb.WriteString("</div></div>\n")
	}
	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Handler serves the /tracez endpoint: an HTML timeline by default,
// ?format=json for the raw timeline, ?format=chrome for the Chrome
// trace-event / Perfetto export. A nil recorder serves a hint that
// tracing is off.
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "tracing is not armed on this process", http.StatusNotFound)
			return
		}
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
		case "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Disposition", "attachment; filename=\"hlfi-trace.json\"")
			_ = r.WriteChrome(w)
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			_ = r.WriteHTML(w)
		}
	})
}

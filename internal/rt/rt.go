// Package rt implements the runtime builtins (stdio, malloc/free, libm)
// shared by the IR interpreter and the assembly-level machine simulator.
// Both execution levels call the same implementations against the same
// memory model, so a fault-free program produces bit-identical output at
// both levels — the precondition for comparing injector outcomes.
package rt

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"hlfi/internal/mem"
)

// Sig describes a builtin's signature. Types are encoded as 'i' (i32),
// 'l' (i64), 'd' (double), 'p' (i8*), 'v' (void).
type Sig struct {
	Params string
	Ret    byte
}

// IsFloatParam reports whether parameter i is a double.
func (s Sig) IsFloatParam(i int) bool { return s.Params[i] == 'd' }

// ReturnsFloat reports whether the builtin returns a double.
func (s Sig) ReturnsFloat() bool { return s.Ret == 'd' }

// Sigs lists every runtime builtin.
var Sigs = map[string]Sig{
	"print_int":    {Params: "i", Ret: 'v'},
	"print_long":   {Params: "l", Ret: 'v'},
	"print_double": {Params: "d", Ret: 'v'},
	"print_char":   {Params: "i", Ret: 'v'},
	"print_str":    {Params: "p", Ret: 'v'},
	"malloc":       {Params: "l", Ret: 'p'},
	"free":         {Params: "p", Ret: 'v'},
	"sqrt":         {Params: "d", Ret: 'd'},
	"fabs":         {Params: "d", Ret: 'd'},
	"floor":        {Params: "d", Ret: 'd'},
	"ceil":         {Params: "d", Ret: 'd'},
	"exp":          {Params: "d", Ret: 'd'},
	"log":          {Params: "d", Ret: 'd'},
	"sin":          {Params: "d", Ret: 'd'},
	"cos":          {Params: "d", Ret: 'd'},
	"pow":          {Params: "dd", Ret: 'd'},
	"fmod":         {Params: "dd", Ret: 'd'},
}

// Env is the execution environment builtins act on.
type Env struct {
	Mem *mem.Memory
	Out io.Writer
}

// FormatDouble renders a double exactly the way print_double does.
func FormatDouble(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// maxCString bounds print_str so a corrupted pointer into a large mapped
// region cannot stall a run.
const maxCString = 1 << 20

var unaryMath = map[string]func(float64) float64{
	"sqrt": math.Sqrt, "fabs": math.Abs, "floor": math.Floor,
	"ceil": math.Ceil, "exp": math.Exp, "log": math.Log,
	"sin": math.Sin, "cos": math.Cos,
}

// Call invokes builtin name with raw argument words (integers/pointers as
// values, doubles as IEEE bit patterns) and returns the raw result word.
func Call(env *Env, name string, args []uint64) (uint64, error) {
	switch name {
	case "print_int":
		_, err := fmt.Fprintf(env.Out, "%d", int32(args[0]))
		return 0, err
	case "print_long":
		_, err := fmt.Fprintf(env.Out, "%d", int64(args[0]))
		return 0, err
	case "print_double":
		_, err := fmt.Fprint(env.Out, FormatDouble(math.Float64frombits(args[0])))
		return 0, err
	case "print_char":
		_, err := fmt.Fprintf(env.Out, "%c", rune(byte(args[0])))
		return 0, err
	case "print_str":
		s, err := ReadCString(env.Mem, args[0])
		if err != nil {
			return 0, err
		}
		_, err = fmt.Fprint(env.Out, s)
		return 0, err
	case "malloc":
		return env.Mem.Alloc(args[0]), nil
	case "free":
		env.Mem.Free(args[0])
		return 0, nil
	case "pow":
		return math.Float64bits(math.Pow(math.Float64frombits(args[0]), math.Float64frombits(args[1]))), nil
	case "fmod":
		return math.Float64bits(math.Mod(math.Float64frombits(args[0]), math.Float64frombits(args[1]))), nil
	}
	if fn, ok := unaryMath[name]; ok {
		return math.Float64bits(fn(math.Float64frombits(args[0]))), nil
	}
	return 0, fmt.Errorf("unknown builtin %q", name)
}

// ReadCString reads a NUL-terminated string; a memory fault propagates as
// a crash.
func ReadCString(m *mem.Memory, addr uint64) (string, error) {
	var buf []byte
	for i := 0; i < maxCString; i++ {
		b, err := m.Read(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(buf), nil
		}
		buf = append(buf, byte(b))
	}
	return string(buf), nil
}

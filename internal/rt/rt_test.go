package rt

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"hlfi/internal/mem"
)

func newEnv() (*Env, *bytes.Buffer) {
	var buf bytes.Buffer
	return &Env{Mem: mem.New(), Out: &buf}, &buf
}

func TestPrintBuiltins(t *testing.T) {
	env, buf := newEnv()
	cases := []struct {
		name string
		args []uint64
		want string
	}{
		{"print_int", []uint64{uint64(uint32(2147483647))}, "2147483647"},
		{"print_int", []uint64{0xFFFFFFFF}, "-1"}, // i32 sign
		{"print_long", []uint64{^uint64(0)}, "-1"},
		{"print_char", []uint64{'Z'}, "Z"},
		{"print_double", []uint64{math.Float64bits(3.25)}, "3.25"},
		{"print_double", []uint64{math.Float64bits(1.0 / 3.0)}, "0.333333"},
	}
	for _, c := range cases {
		buf.Reset()
		if _, err := Call(env, c.name, c.args); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if buf.String() != c.want {
			t.Errorf("%s(%v) printed %q, want %q", c.name, c.args, buf.String(), c.want)
		}
	}
}

func TestPrintStr(t *testing.T) {
	env, buf := newEnv()
	addr := env.Mem.Alloc(16)
	if err := env.Mem.WriteBytes(addr, []byte("hello\x00junk")); err != nil {
		t.Fatal(err)
	}
	if _, err := Call(env, "print_str", []uint64{addr}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello" {
		t.Fatalf("print_str: %q", buf.String())
	}
	// A wild pointer faults (that run becomes a Crash).
	_, err := Call(env, "print_str", []uint64{0x40})
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("expected fault, got %v", err)
	}
}

func TestMallocFree(t *testing.T) {
	env, _ := newEnv()
	p, err := Call(env, "malloc", []uint64{64})
	if err != nil || p == 0 {
		t.Fatalf("malloc: %v %v", p, err)
	}
	if _, err := Call(env, "free", []uint64{p}); err != nil {
		t.Fatal(err)
	}
}

func TestMathBuiltins(t *testing.T) {
	env, _ := newEnv()
	d := func(v float64) uint64 { return math.Float64bits(v) }
	cases := []struct {
		name string
		args []uint64
		want float64
	}{
		{"sqrt", []uint64{d(9)}, 3},
		{"fabs", []uint64{d(-2.5)}, 2.5},
		{"floor", []uint64{d(2.9)}, 2},
		{"ceil", []uint64{d(2.1)}, 3},
		{"exp", []uint64{d(0)}, 1},
		{"log", []uint64{d(1)}, 0},
		{"sin", []uint64{d(0)}, 0},
		{"cos", []uint64{d(0)}, 1},
		{"pow", []uint64{d(2), d(10)}, 1024},
		{"fmod", []uint64{d(7.5), d(2)}, 1.5},
	}
	for _, c := range cases {
		got, err := Call(env, c.name, c.args)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Float64frombits(got) != c.want {
			t.Errorf("%s = %v, want %v", c.name, math.Float64frombits(got), c.want)
		}
	}
}

func TestUnknownBuiltin(t *testing.T) {
	env, _ := newEnv()
	if _, err := Call(env, "nope", nil); err == nil {
		t.Fatal("unknown builtin should error")
	}
}

func TestSigsCoverCalls(t *testing.T) {
	env, _ := newEnv()
	d := math.Float64bits
	for name, sig := range Sigs {
		args := make([]uint64, len(sig.Params))
		for i := range args {
			if sig.IsFloatParam(i) {
				args[i] = d(1)
			} else if sig.Params[i] == 'p' {
				args[i] = env.Mem.Alloc(8) // valid pointer
			} else {
				args[i] = 1
			}
		}
		if _, err := Call(env, name, args); err != nil {
			t.Errorf("declared builtin %s not callable: %v", name, err)
		}
	}
}

func TestFormatDoubleStability(t *testing.T) {
	if FormatDouble(0.1+0.2) != FormatDouble(0.30000000000000004) {
		t.Error("formatting must be deterministic for equal bit patterns")
	}
	if !strings.Contains(FormatDouble(1e300), "e+") {
		t.Error("large values use scientific notation")
	}
}

package telemetry

import (
	"fmt"
	"sync/atomic"
)

// ReplayStats aggregates snapshot-replay counters for a study. Injection
// attempts update it from many goroutines under RunParallel, so every
// field is atomic; all methods are additionally nil-receiver safe so the
// injectors can call them unconditionally.
type ReplayStats struct {
	hits           atomic.Uint64
	misses         atomic.Uint64
	skippedInstrs  atomic.Uint64
	replayedInstrs atomic.Uint64
	cacheBytes     atomic.Uint64
	cacheEntries   atomic.Uint64
	evictions      atomic.Uint64
}

// Hit records one attempt served from a snapshot: skipped instructions
// were fast-forwarded past, replayed instructions were re-executed.
func (s *ReplayStats) Hit(skipped, replayed uint64) {
	if s == nil {
		return
	}
	s.hits.Add(1)
	s.skippedInstrs.Add(skipped)
	s.replayedInstrs.Add(replayed)
}

// Miss records one attempt that ran from instruction zero.
func (s *ReplayStats) Miss(executed uint64) {
	if s == nil {
		return
	}
	s.misses.Add(1)
	s.replayedInstrs.Add(executed)
}

// SetCacheUsage publishes the snapshot cache's current footprint.
func (s *ReplayStats) SetCacheUsage(bytes, entries uint64) {
	if s == nil {
		return
	}
	s.cacheBytes.Store(bytes)
	s.cacheEntries.Store(entries)
}

// NoteEviction counts one cache entry dropped under memory pressure.
func (s *ReplayStats) NoteEviction() {
	if s == nil {
		return
	}
	s.evictions.Add(1)
}

// Hits returns the number of snapshot-served attempts.
func (s *ReplayStats) Hits() uint64 { return s.hits.Load() }

// Misses returns the number of full-run attempts.
func (s *ReplayStats) Misses() uint64 { return s.misses.Load() }

// SkippedInstrs returns total instructions fast-forwarded past.
func (s *ReplayStats) SkippedInstrs() uint64 { return s.skippedInstrs.Load() }

// ReplayedInstrs returns total instructions actually executed.
func (s *ReplayStats) ReplayedInstrs() uint64 { return s.replayedInstrs.Load() }

// CacheBytes returns the last published cache footprint.
func (s *ReplayStats) CacheBytes() uint64 { return s.cacheBytes.Load() }

// CacheEntries returns the last published cache entry count.
func (s *ReplayStats) CacheEntries() uint64 { return s.cacheEntries.Load() }

// Evictions returns the number of entries dropped under the budget.
func (s *ReplayStats) Evictions() uint64 { return s.evictions.Load() }

// Summary renders the one-line human form, or "" when replay never ran.
func (s *ReplayStats) Summary() string {
	if s == nil {
		return ""
	}
	hits, misses := s.Hits(), s.Misses()
	if hits+misses == 0 {
		return ""
	}
	skipped, replayed := s.SkippedInstrs(), s.ReplayedInstrs()
	frac := 0.0
	if skipped+replayed > 0 {
		frac = 100 * float64(skipped) / float64(skipped+replayed)
	}
	return fmt.Sprintf("snapshot replay: %d/%d attempts fast-forwarded (%.1f%% of instructions skipped; cache %s in %d snapshots, %d evicted)",
		hits, hits+misses, frac, fmtBytes(s.CacheBytes()), s.CacheEntries(), s.Evictions())
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Package telemetry records machine-readable campaign run records: a
// structured event stream with one record per study phase and campaign
// cell. Sinks are composable — a JSONL file for offline analysis and
// regression tracking, plus an in-memory aggregator that renders the
// human summary (slowest cells, aggregate throughput).
//
// A study emits, in canonical cell order regardless of how cells were
// scheduled: one study_start, one cell_done or cell_skip per cell, and
// one study_done. Events carry durations rather than wall-clock
// timestamps, so two runs of the same study differ only in the timing
// fields.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event types.
const (
	EventStudyStart = "study_start"
	EventCellDone   = "cell_done"
	EventCellSkip   = "cell_skip"
	EventStudyDone  = "study_done"
)

// Event is one record of a campaign's event stream.
type Event struct {
	Type string `json:"type"`

	// Cell identity (cell_done, cell_skip).
	Benchmark string `json:"benchmark,omitempty"`
	Level     string `json:"level,omitempty"`
	Category  string `json:"category,omitempty"`

	// Study shape (study_start; Cells repeated on study_done with the
	// number of completed cells).
	N        int   `json:"n,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
	Cells    int   `json:"cells,omitempty"`
	Parallel int   `json:"parallel,omitempty"`
	Workers  int   `json:"workers,omitempty"`

	// Timing. ScanMS covers injector construction (the golden profiling
	// run plus the candidate scan); DurationMS the whole cell or study.
	DurationMS float64 `json:"durationMs,omitempty"`
	ScanMS     float64 `json:"scanMs,omitempty"`

	// Outcome accounting (cell_done; totals repeated on study_done).
	Attempts       int     `json:"attempts,omitempty"`
	Activated      int     `json:"activated,omitempty"`
	ActivationRate float64 `json:"activationRate,omitempty"`
	Benign         int     `json:"benign,omitempty"`
	SDC            int     `json:"sdc,omitempty"`
	Crash          int     `json:"crash,omitempty"`
	Hang           int     `json:"hang,omitempty"`
	NotActivated   int     `json:"notActivated,omitempty"`

	// Err explains a skipped cell.
	Err string `json:"err,omitempty"`
}

// Ms converts a duration to the milliseconds used by Event fields.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Recorder consumes telemetry events. Implementations must be safe for
// concurrent use.
type Recorder interface {
	Record(Event)
}

// Multi fans every event out to all recorders (nils are dropped).
func Multi(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return live
}

type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// JSONLSink writes one JSON object per line to an io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLSink wraps w; the caller owns closing it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Record appends the event as one JSONL line. Encoding errors are
// swallowed: telemetry must never fail a campaign.
func (s *JSONLSink) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// Aggregator accumulates the event stream in memory and renders the
// campaign summary.
type Aggregator struct {
	mu    sync.Mutex
	start Event
	done  Event
	cells []Event
	skips []Event
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Record consumes one event.
func (a *Aggregator) Record(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Type {
	case EventStudyStart:
		a.start = e
	case EventCellDone:
		a.cells = append(a.cells, e)
	case EventCellSkip:
		a.skips = append(a.skips, e)
	case EventStudyDone:
		a.done = e
	}
}

// Cells returns a copy of the recorded cell_done events.
func (a *Aggregator) Cells() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Event(nil), a.cells...)
}

// Totals sums attempts and activated injections over all completed cells.
func (a *Aggregator) Totals() (attempts, activated int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalsLocked()
}

func (a *Aggregator) totalsLocked() (attempts, activated int) {
	for _, c := range a.cells {
		attempts += c.Attempts
		activated += c.Activated
	}
	return attempts, activated
}

// Throughput is the aggregate injection rate in injections per second
// over the study wall clock (0 before study_done arrives).
func (a *Aggregator) Throughput() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	attempts, _ := a.totalsLocked()
	if a.done.DurationMS <= 0 {
		return 0
	}
	return float64(attempts) / (a.done.DurationMS / 1000)
}

// SlowestCells returns up to k cell_done events ordered by descending
// duration (ties broken by cell identity for stable output).
func (a *Aggregator) SlowestCells(k int) []Event {
	cells := a.Cells()
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].DurationMS != cells[j].DurationMS {
			return cells[i].DurationMS > cells[j].DurationMS
		}
		return cellID(cells[i]) < cellID(cells[j])
	})
	if k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

func cellID(e Event) string {
	return e.Benchmark + "/" + e.Level + "/" + e.Category
}

// RenderTelemetry renders the campaign summary: totals, aggregate
// throughput, and the slowest cells.
func (a *Aggregator) RenderTelemetry() string {
	a.mu.Lock()
	cells := len(a.cells)
	skips := len(a.skips)
	attempts, activated := a.totalsLocked()
	var compute, scan float64
	for _, c := range a.cells {
		compute += c.DurationMS
		scan += c.ScanMS
	}
	wall := a.done.DurationMS
	parallel, workers := a.start.Parallel, a.start.Workers
	a.mu.Unlock()

	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign telemetry (%d cells, %d skipped; %d cells in flight x %d workers/cell)\n",
		cells, skips, parallel, workers)
	rate := 0.0
	if attempts > 0 {
		rate = 100 * float64(activated) / float64(attempts)
	}
	fmt.Fprintf(&sb, "  injections attempted  : %d (%d activated, %.1f%%)\n", attempts, activated, rate)
	fmt.Fprintf(&sb, "  cell compute time     : %s (candidate scans %s)\n",
		fmtMS(compute), fmtMS(scan))
	if wall > 0 {
		fmt.Fprintf(&sb, "  study wall clock      : %s\n", fmtMS(wall))
		fmt.Fprintf(&sb, "  aggregate throughput  : %.0f injections/sec\n",
			float64(attempts)/(wall/1000))
		if compute > 0 {
			// Sum of per-cell wall time over study wall time: the average
			// number of cells in flight. On a machine with enough cores this
			// equals the scheduler's wall-clock speedup over the serial path.
			fmt.Fprintf(&sb, "  effective concurrency : %.2fx (cell-time/wall)\n", compute/wall)
		}
	}
	slow := a.SlowestCells(5)
	if len(slow) > 0 {
		fmt.Fprintf(&sb, "  slowest cells:\n")
		for _, c := range slow {
			arate := 0.0
			if c.Attempts > 0 {
				arate = 100 * float64(c.Activated) / float64(c.Attempts)
			}
			fmt.Fprintf(&sb, "    %-10s %-5s %-10s %9s  scan %8s  attempts %6d  activation %5.1f%%\n",
				c.Benchmark, c.Level, c.Category, fmtMS(c.DurationMS), fmtMS(c.ScanMS), c.Attempts, arate)
		}
	}
	return sb.String()
}

func fmtMS(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Millisecond).String()
}

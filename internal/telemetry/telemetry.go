// Package telemetry records machine-readable campaign run records: a
// structured event stream with one record per study phase and campaign
// cell. Sinks are composable — a JSONL file for offline analysis and
// regression tracking, plus an in-memory aggregator that renders the
// human summary (slowest cells, aggregate throughput).
//
// A study emits, in canonical cell order regardless of how cells were
// scheduled: one study_start, one cell_done or cell_skip per cell, and
// one study_done. Events carry durations rather than wall-clock
// timestamps, so two runs of the same study differ only in the timing
// fields.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event types.
const (
	EventStudyStart = "study_start"
	EventCellDone   = "cell_done"
	EventCellSkip   = "cell_skip"
	EventStudyDone  = "study_done"

	// Fault-tolerance events. sim_fault records one contained simulator
	// panic (emitted before its cell's cell_done); cell_resume replaces
	// cell_done for a cell restored from a checkpoint; cell_deadline
	// marks a cell dropped by the wall-clock watchdog; study_abort
	// replaces study_done when the study is cancelled.
	EventSimFault     = "sim_fault"
	EventCellResume   = "cell_resume"
	EventCellDeadline = "cell_deadline"
	EventStudyAbort   = "study_abort"

	// EventAttemptTrace carries one traced attempt's fault-propagation
	// span skeleton (emitted before its cell's cell_done, in attempt
	// order, when tracing is armed).
	EventAttemptTrace = "attempt_trace"

	// Fleet events, emitted by the campaign coordinator (never by
	// studies) in coordinator decision order. fleet_lease records a cell
	// handed to a worker; fleet_lease_expire a lease whose worker went
	// silent past its deadline; fleet_requeue a failed or expired cell
	// put back in the queue (Retries counts grants so far);
	// fleet_duplicate a completion for a cell that already has a result
	// (dropped — deterministic cells make duplicates benign). The
	// Aggregator ignores all four: its summary describes study
	// execution, and fleet churn by design never changes results.
	EventFleetLease       = "fleet_lease"
	EventFleetLeaseExpire = "fleet_lease_expire"
	EventFleetRequeue     = "fleet_requeue"
	EventFleetDuplicate   = "fleet_duplicate"

	// Adaptive-sampling events. adaptive_plan records the stratified
	// reallocation computed after round 1 (budget saved by early-stopped
	// cells, budget granted to the widest unconverged cells);
	// cell_extend records one cell's round-2 extension, carrying DELTA
	// counts over its round-1 cell_done so totals stay additive.
	EventAdaptivePlan = "adaptive_plan"
	EventCellExtend   = "cell_extend"

	// EventWarehouseHit replaces cell_done (or cell_extend) for a cell
	// resolved from the content-addressed result warehouse: the record
	// carries the cached counts but represents zero executed injections,
	// so the Aggregator counts hits separately and excludes them from
	// the attempt totals (mirroring cell_resume).
	EventWarehouseHit = "warehouse_hit"
)

// TraceSpan is one edge of a traced attempt's propagation skeleton:
// the injection site, the first corrupted load, store, or branch, and
// the outcome edge, in execution order.
type TraceSpan struct {
	// Kind is "inject", "load", "store", "branch", or "outcome".
	Kind string `json:"kind"`
	// Site describes the instruction (or, for "outcome", the outcome
	// class) in the level's own rendering.
	Site string `json:"site"`
	// At is the dynamic instruction index of the span.
	At uint64 `json:"at,omitempty"`
}

// Event is one record of a campaign's event stream.
type Event struct {
	Type string `json:"type"`

	// Cell identity (cell_done, cell_skip).
	Benchmark string `json:"benchmark,omitempty"`
	Level     string `json:"level,omitempty"`
	Category  string `json:"category,omitempty"`

	// Study shape (study_start; Cells repeated on study_done with the
	// number of completed cells). Shard is the worker's "i/N" spec when
	// the study is one shard of a sharded campaign.
	N        int    `json:"n,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Cells    int    `json:"cells,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Shard    string `json:"shard,omitempty"`

	// Timing. ScanMS covers injector construction (the golden profiling
	// run plus the candidate scan); DurationMS the whole cell or study.
	DurationMS float64 `json:"durationMs,omitempty"`
	ScanMS     float64 `json:"scanMs,omitempty"`

	// Outcome accounting (cell_done; totals repeated on study_done).
	Attempts       int     `json:"attempts,omitempty"`
	Activated      int     `json:"activated,omitempty"`
	ActivationRate float64 `json:"activationRate,omitempty"`
	Benign         int     `json:"benign,omitempty"`
	SDC            int     `json:"sdc,omitempty"`
	Crash          int     `json:"crash,omitempty"`
	Hang           int     `json:"hang,omitempty"`
	NotActivated   int     `json:"notActivated,omitempty"`

	// Err explains a skipped cell.
	Err string `json:"err,omitempty"`

	// Contained-panic detail (sim_fault): the attempt index, the seed
	// that reproduces the panic (the attempt's own seed under
	// per-attempt seeding, the campaign seed for the sequential
	// stream), and the stringified panic value. SimFaults repeats the
	// per-cell total on cell_done.
	Attempt     int    `json:"attempt,omitempty"`
	AttemptSeed int64  `json:"attemptSeed,omitempty"`
	Sequential  bool   `json:"sequential,omitempty"`
	Panic       string `json:"panic,omitempty"`
	SimFaults   int    `json:"simFaults,omitempty"`

	// Fault-propagation trace (attempt_trace): the dynamic candidate
	// index injected at, the attempt's outcome class, and the span
	// skeleton from injection to outcome.
	Trigger uint64      `json:"trigger,omitempty"`
	Outcome string      `json:"outcome,omitempty"`
	Spans   []TraceSpan `json:"spans,omitempty"`

	// Fleet fields (fleet_* events): the worker holding or losing the
	// lease, the lease id, and how many times the cell has been granted.
	Worker  string `json:"worker,omitempty"`
	Lease   uint64 `json:"lease,omitempty"`
	Retries int    `json:"retries,omitempty"`

	// Adaptive-sampling fields. AdaptiveTarget and AdaptiveConverged
	// annotate cell_done/cell_extend records of adaptive cells; the
	// plan-level budget ledger rides on adaptive_plan.
	AdaptiveTarget         int  `json:"adaptiveTarget,omitempty"`
	AdaptiveConverged      bool `json:"adaptiveConverged,omitempty"`
	AdaptiveSaved          int  `json:"adaptiveSaved,omitempty"`
	AdaptiveGranted        int  `json:"adaptiveGranted,omitempty"`
	AdaptiveLeftover       int  `json:"adaptiveLeftover,omitempty"`
	AdaptiveConvergedCells int  `json:"adaptiveConvergedCells,omitempty"`
	AdaptiveExtendedCells  int  `json:"adaptiveExtendedCells,omitempty"`

	// Snapshot-replay accounting (study_done, when replay was enabled).
	ReplayHits         uint64 `json:"replayHits,omitempty"`
	ReplayMisses       uint64 `json:"replayMisses,omitempty"`
	SkippedInstrs      uint64 `json:"skippedInstrs,omitempty"`
	ReplayedInstrs     uint64 `json:"replayedInstrs,omitempty"`
	SnapshotCacheBytes uint64 `json:"snapshotCacheBytes,omitempty"`
	SnapshotEvictions  uint64 `json:"snapshotEvictions,omitempty"`
}

// ReplayFields copies a ReplayStats snapshot into the event (no-op for a
// nil or never-used stats object, keeping omitempty encodings clean).
func (e *Event) ReplayFields(s *ReplayStats) {
	if s == nil || s.Hits()+s.Misses() == 0 {
		return
	}
	e.ReplayHits = s.Hits()
	e.ReplayMisses = s.Misses()
	e.SkippedInstrs = s.SkippedInstrs()
	e.ReplayedInstrs = s.ReplayedInstrs()
	e.SnapshotCacheBytes = s.CacheBytes()
	e.SnapshotEvictions = s.Evictions()
}

// Ms converts a duration to the milliseconds used by Event fields.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Recorder consumes telemetry events. Implementations must be safe for
// concurrent use.
type Recorder interface {
	Record(Event)
}

// Flusher is the optional Recorder extension for sinks that can force
// recorded events to durable storage (fsync for files, Flush for
// buffered writers). The study's abort path flushes before and after
// emitting study_abort so the event stream's tail survives the
// imminent process exit.
type Flusher interface {
	Flush() error
}

// Flush flushes r if it is flush-capable (Multi fans the flush out to
// every capable recorder behind it). Nil-safe; returns the first error.
func Flush(r Recorder) error {
	if f, ok := r.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Multi fans every event out to all recorders (nils are dropped).
func Multi(rs ...Recorder) Recorder {
	var live multi
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return live
}

type multi []Recorder

func (m multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// Flush fans out to every flush-capable recorder and returns the first
// error.
func (m multi) Flush() error {
	var first error
	for _, r := range m {
		if err := Flush(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JSONLSink writes one JSON object per line to an io.Writer.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w; the caller owns closing it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

// Record appends the event as one JSONL line. Encoding errors are
// swallowed: telemetry must never fail a campaign.
func (s *JSONLSink) Record(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// Flush forces recorded events to durable storage: an *os.File is
// fsynced, a buffered writer flushed; other writers (already unbuffered)
// need nothing. The sink lock is held so a flush never interleaves with
// a partially written line.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch w := s.w.(type) {
	case interface{ Sync() error }:
		return w.Sync()
	case interface{ Flush() error }:
		return w.Flush()
	}
	return nil
}

// cellRecord is one released cell in the combined arrival-order list
// behind Status: freshly completed (cell_done) or restored from a
// checkpoint (cell_resume).
type cellRecord struct {
	e          Event
	resumed    bool
	warehoused bool
}

// Aggregator accumulates the event stream in memory and renders the
// campaign summary.
type Aggregator struct {
	mu         sync.Mutex
	start      Event
	done       Event
	cells      []Event
	skips      []Event
	resumes    []Event
	warehouses []Event
	deadlines  []Event
	simFaults  []Event
	traces     int
	abort      *Event
	extends    []Event
	plan       *Event
	// ordered interleaves cell_done and cell_resume (and, in
	// orderedSkips, cell_skip and cell_deadline) in arrival order. The
	// study's reorder buffer releases events in canonical cell order, so
	// arrival order IS canonical order — the per-type slices above lose
	// that interleaving, which is why Status reads these instead.
	ordered      []cellRecord
	orderedSkips []Event
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Record consumes one event.
func (a *Aggregator) Record(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Type {
	case EventStudyStart:
		a.start = e
	case EventCellDone:
		a.cells = append(a.cells, e)
		a.ordered = append(a.ordered, cellRecord{e: e})
	case EventCellSkip:
		a.skips = append(a.skips, e)
		a.orderedSkips = append(a.orderedSkips, e)
	case EventCellResume:
		a.resumes = append(a.resumes, e)
		a.ordered = append(a.ordered, cellRecord{e: e, resumed: true})
	case EventWarehouseHit:
		// Warehouse hits carry cached counts but zero executed
		// injections; like resumes they are listed, not totalled.
		a.warehouses = append(a.warehouses, e)
		a.ordered = append(a.ordered, cellRecord{e: e, warehoused: true})
	case EventCellDeadline:
		a.deadlines = append(a.deadlines, e)
		a.orderedSkips = append(a.orderedSkips, e)
	case EventSimFault:
		a.simFaults = append(a.simFaults, e)
	case EventAttemptTrace:
		// Traces are counted, not retained: a traced study can carry
		// thousands of them and the JSONL sink is the archival path.
		a.traces++
	case EventCellExtend:
		// Extensions carry delta counts, so adding them to the cell_done
		// totals keeps Totals exact for adaptive studies.
		a.extends = append(a.extends, e)
	case EventAdaptivePlan:
		p := e
		a.plan = &p
	case EventStudyDone:
		a.done = e
	case EventStudyAbort:
		ab := e
		a.abort = &ab
	}
}

// SimFaults returns a copy of the recorded sim_fault events.
func (a *Aggregator) SimFaults() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Event(nil), a.simFaults...)
}

// Resumed returns the number of cells restored from a checkpoint.
func (a *Aggregator) Resumed() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.resumes)
}

// Warehoused returns the number of cells resolved from the result
// warehouse (zero injections executed).
func (a *Aggregator) Warehoused() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.warehouses)
}

// Traces returns the number of attempt_trace events recorded.
func (a *Aggregator) Traces() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.traces
}

// Aborted reports whether the stream ended in study_abort.
func (a *Aggregator) Aborted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.abort != nil
}

// Cells returns a copy of the recorded cell_done events.
func (a *Aggregator) Cells() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Event(nil), a.cells...)
}

// Totals sums attempts and activated injections over all completed cells.
func (a *Aggregator) Totals() (attempts, activated int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalsLocked()
}

func (a *Aggregator) totalsLocked() (attempts, activated int) {
	for _, c := range a.cells {
		attempts += c.Attempts
		activated += c.Activated
	}
	for _, c := range a.extends {
		attempts += c.Attempts
		activated += c.Activated
	}
	return attempts, activated
}

// Throughput is the aggregate injection rate in injections per second
// over the study wall clock (0 before study_done arrives).
func (a *Aggregator) Throughput() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	attempts, _ := a.totalsLocked()
	if a.done.DurationMS <= 0 {
		return 0
	}
	return float64(attempts) / (a.done.DurationMS / 1000)
}

// SlowestCells returns up to k cell_done events ordered by descending
// duration (ties broken by cell identity for stable output).
func (a *Aggregator) SlowestCells(k int) []Event {
	cells := a.Cells()
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].DurationMS != cells[j].DurationMS {
			return cells[i].DurationMS > cells[j].DurationMS
		}
		return cellID(cells[i]) < cellID(cells[j])
	})
	if k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

func cellID(e Event) string {
	return e.Benchmark + "/" + e.Level + "/" + e.Category
}

// RenderTelemetry renders the campaign summary: totals, aggregate
// throughput, and the slowest cells.
func (a *Aggregator) RenderTelemetry() string {
	a.mu.Lock()
	cells := len(a.cells)
	skips := len(a.skips)
	resumes := len(a.resumes)
	warehouses := len(a.warehouses)
	deadlines := len(a.deadlines)
	simFaults := len(a.simFaults)
	traces := a.traces
	aborted := a.abort != nil
	attempts, activated := a.totalsLocked()
	var compute, scan float64
	for _, c := range a.cells {
		compute += c.DurationMS
		scan += c.ScanMS
	}
	wall := a.done.DurationMS
	parallel, workers := a.start.Parallel, a.start.Workers
	var plan *Event
	if a.plan != nil {
		p := *a.plan
		plan = &p
	}
	a.mu.Unlock()

	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign telemetry (%d cells, %d skipped; %d cells in flight x %d workers/cell)\n",
		cells, skips, parallel, workers)
	if resumes > 0 {
		fmt.Fprintf(&sb, "  resumed from checkpoint: %d cells (not recomputed)\n", resumes)
	}
	if warehouses > 0 {
		fmt.Fprintf(&sb, "  warehouse hits        : %d cells (not recomputed)\n", warehouses)
	}
	if simFaults > 0 {
		fmt.Fprintf(&sb, "  simulator panics contained: %d (see sim_fault events for seeds)\n", simFaults)
	}
	if deadlines > 0 {
		fmt.Fprintf(&sb, "  cells dropped at deadline: %d\n", deadlines)
	}
	if traces > 0 {
		fmt.Fprintf(&sb, "  attempt traces recorded: %d (see attempt_trace events)\n", traces)
	}
	if plan != nil {
		fmt.Fprintf(&sb, "  adaptive sampling     : %d cells converged early (saved %d activated); %d extended (+%d granted, %d leftover)\n",
			plan.AdaptiveConvergedCells, plan.AdaptiveSaved,
			plan.AdaptiveExtendedCells, plan.AdaptiveGranted, plan.AdaptiveLeftover)
	}
	if aborted {
		fmt.Fprintf(&sb, "  STUDY ABORTED: results below cover the completed prefix only\n")
	}
	rate := 0.0
	if attempts > 0 {
		rate = 100 * float64(activated) / float64(attempts)
	}
	fmt.Fprintf(&sb, "  injections attempted  : %d (%d activated, %.1f%%)\n", attempts, activated, rate)
	fmt.Fprintf(&sb, "  cell compute time     : %s (candidate scans %s)\n",
		fmtMS(compute), fmtMS(scan))
	if wall > 0 {
		fmt.Fprintf(&sb, "  study wall clock      : %s\n", fmtMS(wall))
		fmt.Fprintf(&sb, "  aggregate throughput  : %.0f injections/sec\n",
			float64(attempts)/(wall/1000))
		if compute > 0 {
			// Sum of per-cell wall time over study wall time: the average
			// number of cells in flight. On a machine with enough cores this
			// equals the scheduler's wall-clock speedup over the serial path.
			fmt.Fprintf(&sb, "  effective concurrency : %.2fx (cell-time/wall)\n", compute/wall)
		}
	}
	a.mu.Lock()
	done := a.done
	a.mu.Unlock()
	if done.ReplayHits+done.ReplayMisses > 0 {
		total := done.SkippedInstrs + done.ReplayedInstrs
		frac := 0.0
		if total > 0 {
			frac = 100 * float64(done.SkippedInstrs) / float64(total)
		}
		fmt.Fprintf(&sb, "  snapshot replay       : %d/%d attempts fast-forwarded (%.1f%% of instructions skipped; cache %s, %d evictions)\n",
			done.ReplayHits, done.ReplayHits+done.ReplayMisses, frac,
			fmtBytes(done.SnapshotCacheBytes), done.SnapshotEvictions)
	}
	slow := a.SlowestCells(5)
	if len(slow) > 0 {
		fmt.Fprintf(&sb, "  slowest cells:\n")
		for _, c := range slow {
			arate := 0.0
			if c.Attempts > 0 {
				arate = 100 * float64(c.Activated) / float64(c.Attempts)
			}
			fmt.Fprintf(&sb, "    %-10s %-5s %-10s %9s  scan %8s  attempts %6d  activation %5.1f%%\n",
				c.Benchmark, c.Level, c.Category, fmtMS(c.DurationMS), fmtMS(c.ScanMS), c.Attempts, arate)
		}
	}
	return sb.String()
}

func fmtMS(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Millisecond).String()
}

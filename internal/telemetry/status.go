package telemetry

import (
	"hlfi/internal/stats"
)

// StudyStatus is the JSON snapshot served at /statusz: study shape,
// progress counts, and per-cell outcome-rate estimates for every cell
// released so far, in canonical cell order. Rates carry Wilson-score
// 95% intervals so a watcher can tell converged cells from noisy ones
// while the study is still running.
type StudyStatus struct {
	N    int   `json:"n,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Shard is the worker's "i/N" spec when this process runs one shard
	// of a sharded campaign ("" for an unsharded study).
	Shard string `json:"shard,omitempty"`

	CellsPlanned    int  `json:"cellsPlanned"`
	CellsDone       int  `json:"cellsDone"`
	CellsSkipped    int  `json:"cellsSkipped"`
	CellsResumed    int  `json:"cellsResumed"`
	CellsWarehoused int  `json:"cellsWarehoused,omitempty"`
	CellsDeadline   int  `json:"cellsDeadline"`
	SimFaults       int  `json:"simFaults"`
	Traces          int  `json:"traces"`
	Done            bool `json:"done"`
	Aborted         bool `json:"aborted"`

	Attempts         int     `json:"attempts"`
	Activated        int     `json:"activated"`
	ThroughputPerSec float64 `json:"throughputPerSec"`

	Cells []CellStatus `json:"cells,omitempty"`
	Skips []CellStatus `json:"skips,omitempty"`
}

// CellStatus is one completed (or skipped) cell's running estimate.
type CellStatus struct {
	Benchmark string `json:"benchmark"`
	Level     string `json:"level"`
	Category  string `json:"category"`
	Resumed   bool   `json:"resumed,omitempty"`
	// Warehoused marks a cell resolved from the content-addressed result
	// warehouse (cached counts, zero injections executed by this run).
	Warehoused bool `json:"warehoused,omitempty"`

	Attempts   int     `json:"attempts,omitempty"`
	Activated  int     `json:"activated,omitempty"`
	SimFaults  int     `json:"simFaults,omitempty"`
	DurationMS float64 `json:"durationMs,omitempty"`

	Crash  *RateCI `json:"crash,omitempty"`
	SDC    *RateCI `json:"sdc,omitempty"`
	Benign *RateCI `json:"benign,omitempty"`
	Hang   *RateCI `json:"hang,omitempty"`

	// Err explains a skipped cell.
	Err string `json:"err,omitempty"`
}

// RateCI is an outcome proportion with its Wilson-score 95% interval.
type RateCI struct {
	Count    int     `json:"count"`
	Rate     float64 `json:"rate"`
	WilsonLo float64 `json:"wilsonLo"`
	WilsonHi float64 `json:"wilsonHi"`
}

func rateCI(successes, trials int) *RateCI {
	p := stats.Proportion{Successes: successes, Trials: trials}
	lo, hi := p.WilsonCI()
	return &RateCI{Count: successes, Rate: p.Rate(), WilsonLo: lo, WilsonHi: hi}
}

func cellStatus(e Event, resumed, warehoused bool) CellStatus {
	activated := e.Benign + e.SDC + e.Crash + e.Hang
	return CellStatus{
		Benchmark: e.Benchmark, Level: e.Level, Category: e.Category,
		Resumed:    resumed,
		Warehoused: warehoused,
		Attempts:   e.Attempts,
		Activated:  activated,
		SimFaults:  e.SimFaults,
		DurationMS: e.DurationMS,
		Crash:      rateCI(e.Crash, activated),
		SDC:        rateCI(e.SDC, activated),
		Benign:     rateCI(e.Benign, activated),
		Hang:       rateCI(e.Hang, activated),
	}
}

// Status builds the current study snapshot from the recorded event
// stream. Safe to call concurrently with Record — this is the /statusz
// read path of a live campaign.
func (a *Aggregator) Status() StudyStatus {
	a.mu.Lock()
	defer a.mu.Unlock()

	st := StudyStatus{
		N:               a.start.N,
		Seed:            a.start.Seed,
		Shard:           a.start.Shard,
		CellsPlanned:    a.start.Cells,
		CellsDone:       len(a.cells),
		CellsSkipped:    len(a.skips),
		CellsResumed:    len(a.resumes),
		CellsWarehoused: len(a.warehouses),
		CellsDeadline:   len(a.deadlines),
		SimFaults:       len(a.simFaults),
		Traces:          a.traces,
		Done:            a.done.Type == EventStudyDone,
		Aborted:         a.abort != nil,
	}
	st.Attempts, st.Activated = a.totalsLocked()
	if a.done.DurationMS > 0 {
		st.ThroughputPerSec = float64(st.Attempts) / (a.done.DurationMS / 1000)
	}
	// The combined arrival-order lists interleave fresh and resumed
	// cells (and skips with deadline drops) exactly as the study's
	// reorder buffer released them — canonical cell order. Reading the
	// per-type slices instead would list every resumed cell after every
	// fresh one, breaking the documented ordering on -resume and merged
	// runs.
	for _, r := range a.ordered {
		st.Cells = append(st.Cells, cellStatus(r.e, r.resumed, r.warehoused))
	}
	for _, e := range a.orderedSkips {
		st.Skips = append(st.Skips, CellStatus{
			Benchmark: e.Benchmark, Level: e.Level, Category: e.Category, Err: e.Err,
		})
	}
	return st
}

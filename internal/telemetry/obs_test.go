package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// syncTracker is an io.Writer with an fsync-like Sync method that
// records the interleaving of writes and syncs.
type syncTracker struct {
	bytes.Buffer
	log []string
}

func (w *syncTracker) Write(p []byte) (int, error) {
	w.log = append(w.log, "write")
	return w.Buffer.Write(p)
}

func (w *syncTracker) Sync() error {
	w.log = append(w.log, "sync")
	return nil
}

// TestJSONLSinkFlushSyncs is the satellite-1 regression test: a sink
// over a sync-capable writer (an *os.File in production) must fsync on
// Flush, so the study's abort path can force the event tail to disk
// before the process exits.
func TestJSONLSinkFlushSyncs(t *testing.T) {
	w := &syncTracker{}
	s := NewJSONLSink(w)
	s.Record(Event{Type: EventStudyStart})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Record(Event{Type: EventStudyAbort})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{"write", "sync", "write", "sync"}
	if len(w.log) != len(want) {
		t.Fatalf("log = %v, want %v", w.log, want)
	}
	for i := range want {
		if w.log[i] != want[i] {
			t.Fatalf("log = %v, want %v", w.log, want)
		}
	}
}

// TestJSONLSinkFlushBuffered covers the buffered-writer branch: Flush
// must drain a bufio.Writer so no event is stranded in process memory.
func TestJSONLSinkFlushBuffered(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	s := NewJSONLSink(bw)
	s.Record(Event{Type: EventStudyAbort, Err: "ctx cancelled"})
	if buf.Len() != 0 {
		t.Fatal("event reached the underlying writer before Flush (buffer too small for the test)")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "study_abort") {
		t.Errorf("flushed stream missing abort event: %q", buf.String())
	}
}

// TestFlushPlainWriterIsNoOp: writers with neither Sync nor Flush (an
// unbuffered pipe, a bytes.Buffer) need nothing and must not error.
func TestFlushPlainWriterIsNoOp(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Record(Event{Type: EventStudyDone})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := Flush(s); err != nil {
		t.Fatal(err)
	}
	// A recorder with no Flush at all is fine too.
	if err := Flush(NewAggregator()); err != nil {
		t.Fatal(err)
	}
	if err := Flush(nil); err != nil {
		t.Fatal(err)
	}
}

// TestMultiFlushFansOut: Multi must flush every flush-capable recorder
// behind it, skipping the rest.
func TestMultiFlushFansOut(t *testing.T) {
	w1, w2 := &syncTracker{}, &syncTracker{}
	m := Multi(NewAggregator(), NewJSONLSink(w1), NewJSONLSink(w2))
	m.Record(Event{Type: EventStudyAbort})
	if err := Flush(m); err != nil {
		t.Fatal(err)
	}
	for i, w := range []*syncTracker{w1, w2} {
		if len(w.log) == 0 || w.log[len(w.log)-1] != "sync" {
			t.Errorf("sink %d not synced: log %v", i, w.log)
		}
	}
}

// TestReplayStatsPostEvictionGauge is the satellite-2 regression: the
// cache-usage gauge is last-write-wins, so after an eviction pass the
// stats must report the post-eviction footprint, never a stale
// pre-eviction value, and eviction counts must accumulate.
func TestReplayStatsPostEvictionGauge(t *testing.T) {
	s := &ReplayStats{}
	// Two entries admitted.
	s.SetCacheUsage(1000, 40)
	if s.CacheBytes() != 1000 || s.CacheEntries() != 40 {
		t.Fatalf("gauge = (%d, %d), want (1000, 40)", s.CacheBytes(), s.CacheEntries())
	}
	// An eviction pass drops one entry; the publish that follows must
	// fully replace the gauge.
	s.NoteEviction()
	s.SetCacheUsage(400, 15)
	if s.CacheBytes() != 400 {
		t.Errorf("post-eviction bytes = %d, want 400", s.CacheBytes())
	}
	if s.CacheEntries() != 15 {
		t.Errorf("post-eviction entries = %d, want 15", s.CacheEntries())
	}
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	// Thinning publishes a shrunken footprint for the same entry count
	// of entries — still last-write-wins.
	s.SetCacheUsage(200, 8)
	if s.CacheBytes() != 200 || s.CacheEntries() != 8 {
		t.Errorf("post-thinning gauge = (%d, %d), want (200, 8)", s.CacheBytes(), s.CacheEntries())
	}
	// Nil receiver: every mutator is a no-op.
	var nilStats *ReplayStats
	nilStats.SetCacheUsage(1, 1)
	nilStats.NoteEviction()
	nilStats.Hit(1, 1)
	nilStats.Miss(1)
}

// TestAggregatorZeroAttemptStudy is the satellite-3 coverage: a study
// that starts and finishes with no completed cells (every cell skipped)
// must render and summarize without dividing by zero.
func TestAggregatorZeroAttemptStudy(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Type: EventStudyStart, N: 100, Seed: 7, Cells: 2, Parallel: 1, Workers: 1})
	a.Record(Event{Type: EventCellSkip, Benchmark: "bzip2m", Level: "LLFI", Category: "cast", Err: "no candidates"})
	a.Record(Event{Type: EventCellSkip, Benchmark: "mcfm", Level: "PINFI", Category: "cast", Err: "no candidates"})
	a.Record(Event{Type: EventStudyDone, Cells: 0, DurationMS: 12})

	if attempts, activated := a.Totals(); attempts != 0 || activated != 0 {
		t.Errorf("totals = (%d, %d), want (0, 0)", attempts, activated)
	}
	if tp := a.Throughput(); tp != 0 {
		t.Errorf("throughput = %v, want 0 with zero attempts", tp)
	}
	if slow := a.SlowestCells(5); len(slow) != 0 {
		t.Errorf("slowest cells = %v, want empty", slow)
	}
	out := a.RenderTelemetry()
	if !strings.Contains(out, "0 cells, 2 skipped") {
		t.Errorf("render missing skip accounting:\n%s", out)
	}
	if !strings.Contains(out, "injections attempted  : 0 (0 activated, 0.0%)") {
		t.Errorf("render missing zero-attempt line:\n%s", out)
	}
	st := a.Status()
	if st.CellsDone != 0 || st.CellsSkipped != 2 || !st.Done {
		t.Errorf("status = %+v", st)
	}
	if len(st.Skips) != 2 || st.Skips[0].Err != "no candidates" {
		t.Errorf("status skips = %+v", st.Skips)
	}
}

// TestAggregatorSingleCellStudy: with exactly one completed cell the
// slowest-cells list and the throughput summary must both reflect it.
func TestAggregatorSingleCellStudy(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Type: EventStudyStart, N: 50, Cells: 1, Parallel: 1, Workers: 1})
	a.Record(Event{Type: EventCellDone, Benchmark: "mcfm", Level: "LLFI", Category: "all",
		DurationMS: 250, ScanMS: 40, Attempts: 80, Activated: 50,
		Benign: 20, SDC: 10, Crash: 15, Hang: 5, NotActivated: 30})
	a.Record(Event{Type: EventStudyDone, Cells: 1, DurationMS: 500})

	if attempts, activated := a.Totals(); attempts != 80 || activated != 50 {
		t.Errorf("totals = (%d, %d), want (80, 50)", attempts, activated)
	}
	if tp := a.Throughput(); tp != 160 { // 80 attempts / 0.5 s
		t.Errorf("throughput = %v, want 160", tp)
	}
	slow := a.SlowestCells(5)
	if len(slow) != 1 || slow[0].Benchmark != "mcfm" {
		t.Fatalf("slowest cells = %+v, want the single cell", slow)
	}
	out := a.RenderTelemetry()
	if !strings.Contains(out, "aggregate throughput  : 160 injections/sec") {
		t.Errorf("render missing throughput:\n%s", out)
	}
	if !strings.Contains(out, "mcfm") {
		t.Errorf("render missing the slowest cell:\n%s", out)
	}
}

// TestStatusWilsonIntervals checks the /statusz payload: rates carry
// Wilson intervals that bracket the point estimate, and resumed cells
// are marked.
func TestStatusWilsonIntervals(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Type: EventStudyStart, N: 100, Seed: 3, Cells: 2})
	a.Record(Event{Type: EventCellDone, Benchmark: "bzip2m", Level: "LLFI", Category: "all",
		Attempts: 150, Benign: 40, SDC: 30, Crash: 25, Hang: 5, NotActivated: 50})
	a.Record(Event{Type: EventCellResume, Benchmark: "bzip2m", Level: "PINFI", Category: "all",
		Attempts: 120, Benign: 60, SDC: 20, Crash: 20, Hang: 0, NotActivated: 20})

	st := a.Status()
	if st.CellsPlanned != 2 || st.CellsDone != 1 || st.CellsResumed != 1 {
		t.Fatalf("status counts: %+v", st)
	}
	if len(st.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (done + resumed)", len(st.Cells))
	}
	done, resumed := st.Cells[0], st.Cells[1]
	if resumed.Level != "PINFI" || !resumed.Resumed {
		t.Errorf("resumed cell not marked: %+v", resumed)
	}
	if done.Activated != 100 {
		t.Errorf("activated = %d, want 100", done.Activated)
	}
	ci := done.Crash
	if ci == nil || ci.Count != 25 || ci.Rate != 0.25 {
		t.Fatalf("crash rate = %+v", ci)
	}
	if !(ci.WilsonLo < ci.Rate && ci.Rate < ci.WilsonHi) {
		t.Errorf("Wilson interval [%v, %v] does not bracket %v", ci.WilsonLo, ci.WilsonHi, ci.Rate)
	}
	if ci.WilsonLo < 0 || ci.WilsonHi > 1 {
		t.Errorf("Wilson interval [%v, %v] out of range", ci.WilsonLo, ci.WilsonHi)
	}
	// The snapshot must be JSON-encodable (it is served verbatim).
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}

// TestAttemptTraceEvents: attempt_trace events round-trip through JSON
// and are counted (not retained) by the aggregator.
func TestAttemptTraceEvents(t *testing.T) {
	e := Event{
		Type:      EventAttemptTrace,
		Benchmark: "mcfm", Level: "LLFI", Category: "all",
		Attempt: 3, Trigger: 1234, Outcome: "sdc",
		Spans: []TraceSpan{
			{Kind: "inject", Site: "@main %mul = mul i32", At: 500},
			{Kind: "store", Site: "@main store i32", At: 510},
			{Kind: "outcome", Site: "sdc", At: 9000},
		},
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 3 || got.Spans[0].Kind != "inject" || got.Spans[2].At != 9000 {
		t.Errorf("trace round-trip lost spans: %+v", got.Spans)
	}
	// Non-trace events must not carry a spans field.
	b, _ = json.Marshal(Event{Type: EventCellDone, Attempts: 5})
	if strings.Contains(string(b), "spans") {
		t.Errorf("cell_done carries spans: %s", b)
	}

	a := NewAggregator()
	a.Record(e)
	a.Record(e)
	if a.Traces() != 2 {
		t.Errorf("traces = %d, want 2", a.Traces())
	}
	if !strings.Contains(a.RenderTelemetry(), "attempt traces recorded: 2") {
		t.Error("render missing trace count")
	}
}

// TestStatusCanonicalOrderOnResume is the regression test for the
// /statusz ordering bug: a resumed study's event stream interleaves
// cell_resume (restored cells) and cell_done (recomputed cells) in
// canonical cell order — the order the study's reorder buffer releases
// them — and Status must preserve that interleaving. The old
// implementation read the per-type slices back to back, listing every
// resumed cell after every fresh one.
func TestStatusCanonicalOrderOnResume(t *testing.T) {
	a := NewAggregator()
	a.Record(Event{Type: EventStudyStart, N: 10, Seed: 5, Cells: 4, Shard: "1/3"})
	// Canonical order: resumed, fresh, skipped, resumed — the shape of a
	// -resume run whose interruption left holes mid-study.
	a.Record(Event{Type: EventCellResume, Benchmark: "bzip2m", Level: "LLFI", Category: "all", Attempts: 10})
	a.Record(Event{Type: EventCellDone, Benchmark: "bzip2m", Level: "LLFI", Category: "arith", Attempts: 12})
	a.Record(Event{Type: EventCellSkip, Benchmark: "bzip2m", Level: "LLFI", Category: "cast", Err: "no candidates"})
	a.Record(Event{Type: EventCellResume, Benchmark: "bzip2m", Level: "PINFI", Category: "all", Attempts: 11})
	a.Record(Event{Type: EventCellDeadline, Benchmark: "bzip2m", Level: "PINFI", Category: "arith", Err: "deadline"})

	st := a.Status()
	if st.Shard != "1/3" {
		t.Errorf("status shard = %q, want 1/3", st.Shard)
	}
	want := []struct {
		category string
		resumed  bool
	}{
		{"all", true}, {"arith", false}, {"all", true},
	}
	if len(st.Cells) != len(want) {
		t.Fatalf("cells = %d, want %d", len(st.Cells), len(want))
	}
	for i, w := range want {
		if st.Cells[i].Category != w.category || st.Cells[i].Resumed != w.resumed {
			t.Errorf("cells[%d] = %s/resumed=%v, want %s/resumed=%v — canonical order broken",
				i, st.Cells[i].Category, st.Cells[i].Resumed, w.category, w.resumed)
		}
	}
	// Skips likewise keep arrival order across skip and deadline events.
	if len(st.Skips) != 2 || st.Skips[0].Category != "cast" || st.Skips[1].Category != "arith" {
		t.Errorf("skips out of order: %+v", st.Skips)
	}
}

package telemetry_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"hlfi/internal/telemetry"
)

func cell(bm string, durMS float64, attempts, activated int) telemetry.Event {
	return telemetry.Event{
		Type: telemetry.EventCellDone, Benchmark: bm, Level: "ir", Category: "all",
		DurationMS: durMS, ScanMS: durMS / 10, Attempts: attempts, Activated: activated,
	}
}

// TestJSONLSink: one valid JSON object per line, in order.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := telemetry.NewJSONLSink(&buf)
	s.Record(telemetry.Event{Type: telemetry.EventStudyStart, N: 10, Seed: 7, Cells: 2})
	s.Record(cell("bzip2m", 120, 11, 10))
	s.Record(telemetry.Event{Type: telemetry.EventStudyDone, DurationMS: 130})

	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, e.Type)
	}
	want := []string{"study_start", "cell_done", "study_done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event order %v, want %v", types, want)
	}
}

// TestJSONLSinkConcurrent: concurrent Record calls must not interleave
// bytes (run under -race).
func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := telemetry.NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Record(cell("quantumm", 1, 2, 2))
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("interleaved JSONL line: %q", sc.Text())
		}
		lines++
	}
	if lines != 32 {
		t.Fatalf("got %d lines, want 32", lines)
	}
}

// TestAggregator: totals, throughput, slowest-cell ordering, summary.
func TestAggregator(t *testing.T) {
	a := telemetry.NewAggregator()
	a.Record(telemetry.Event{Type: telemetry.EventStudyStart, Cells: 3, Parallel: 4, Workers: 1})
	a.Record(cell("bzip2m", 300, 12, 10))
	a.Record(cell("mcfm", 700, 15, 10))
	a.Record(cell("quantumm", 500, 10, 10))
	a.Record(telemetry.Event{Type: telemetry.EventCellSkip, Benchmark: "mcfm", Err: "no candidates"})
	a.Record(telemetry.Event{Type: telemetry.EventStudyDone, DurationMS: 1000})

	if attempts, activated := a.Totals(); attempts != 37 || activated != 30 {
		t.Fatalf("Totals() = (%d,%d), want (37,30)", attempts, activated)
	}
	if tp := a.Throughput(); tp < 36.9 || tp > 37.1 {
		t.Fatalf("Throughput() = %f, want ~37 injections/sec", tp)
	}
	slow := a.SlowestCells(2)
	if len(slow) != 2 || slow[0].Benchmark != "mcfm" || slow[1].Benchmark != "quantumm" {
		t.Fatalf("SlowestCells(2) = %+v", slow)
	}
	out := a.RenderTelemetry()
	for _, want := range []string{"3 cells, 1 skipped", ": 37 (30 activated, 81.1%)", "mcfm", "injections/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestMulti: fan-out reaches every sink, nils are dropped.
func TestMulti(t *testing.T) {
	a1, a2 := telemetry.NewAggregator(), telemetry.NewAggregator()
	m := telemetry.Multi(a1, nil, a2)
	m.Record(cell("hmmerm", 5, 3, 3))
	if len(a1.Cells()) != 1 || len(a2.Cells()) != 1 {
		t.Fatalf("fan-out failed: %d, %d", len(a1.Cells()), len(a2.Cells()))
	}
}

// TestAggregatorResilienceEvents: the fault-tolerance event types are
// tracked and surfaced in the rendered summary.
func TestAggregatorResilienceEvents(t *testing.T) {
	a := telemetry.NewAggregator()
	a.Record(telemetry.Event{Type: telemetry.EventStudyStart, Cells: 4, Parallel: 2, Workers: 1})
	a.Record(telemetry.Event{Type: telemetry.EventCellResume, Benchmark: "bzip2m", Activated: 10})
	a.Record(telemetry.Event{Type: telemetry.EventSimFault, Benchmark: "mcfm",
		Attempt: 3, AttemptSeed: 42, Panic: "index out of range"})
	a.Record(cell("mcfm", 100, 12, 80))
	a.Record(telemetry.Event{Type: telemetry.EventCellDeadline, Benchmark: "hmmerm",
		Err: "cell deadline exceeded"})
	a.Record(telemetry.Event{Type: telemetry.EventStudyAbort, Cells: 2, Err: "context canceled"})

	if a.Resumed() != 1 {
		t.Errorf("Resumed() = %d, want 1", a.Resumed())
	}
	if !a.Aborted() {
		t.Error("Aborted() = false after study_abort")
	}
	sf := a.SimFaults()
	if len(sf) != 1 || sf[0].AttemptSeed != 42 {
		t.Fatalf("SimFaults() = %+v, want one record with seed 42", sf)
	}
	out := a.RenderTelemetry()
	for _, want := range []string{
		"resumed from checkpoint: 1", "simulator panics contained: 1",
		"cells dropped at deadline: 1", "STUDY ABORTED",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestEventJSONRoundTrip: the new fields serialize under stable keys and
// absent fields stay omitted.
func TestEventJSONRoundTrip(t *testing.T) {
	e := telemetry.Event{Type: telemetry.EventSimFault, Benchmark: "bzip2m",
		Attempt: 7, AttemptSeed: 99, Sequential: true, Panic: "boom"}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"attempt":7`, `"attemptSeed":99`, `"sequential":true`, `"panic":"boom"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("serialized sim_fault missing %s: %s", want, raw)
		}
	}
	plain, _ := json.Marshal(telemetry.Event{Type: telemetry.EventCellDone})
	for _, absent := range []string{"attempt", "panic", "simFaults"} {
		if strings.Contains(string(plain), absent) {
			t.Errorf("zero-valued field %q not omitted: %s", absent, plain)
		}
	}
}

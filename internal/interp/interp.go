// Package interp executes IR modules directly. It is the high-level
// execution substrate of the study: the level at which the LLFI-style
// injector observes, profiles, and corrupts the program, corresponding to
// running an LLVM-IR-instrumented binary in the paper.
//
// The interpreter shares the virtual-memory model (and therefore crash
// semantics) with the assembly-level machine simulator, so outcome
// differences between levels come from representation differences, not
// from divergent runtime environments.
package interp

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"hlfi/internal/ir"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
)

// ErrHang is returned when execution exceeds the instruction budget; the
// campaign layer classifies it as a Hang (the paper's timeout mechanism).
var ErrHang = errors.New("instruction budget exceeded (hang)")

// ErrNoMain is returned when the module lacks a main function.
var ErrNoMain = errors.New("module has no main function")

// DefaultMaxInstrs is the fallback dynamic-instruction budget.
const DefaultMaxInstrs = 200_000_000

// minFrameBytes models the call-frame overhead (return address, saved
// frame pointer) so that runaway recursion exhausts the simulated stack.
const minFrameBytes = 64

// Prepared caches everything derivable from the module so that thousands
// of injection runs share one analysis: sequence numbering, global layout,
// per-function frame plans, and GEP stride plans.
type Prepared struct {
	Mod      *ir.Module
	Layout   *ir.Layout
	SeqTotal int

	frames map[*ir.Function]*framePlan
	geps   map[*ir.Instr]*gepPlan
}

type framePlan struct {
	size    uint64
	allocas map[*ir.Instr]uint64 // alloca -> offset from frame base
}

type gepStep struct {
	scale   uint64 // multiply the (sign-extended) index by this...
	offset  uint64 // ...or add this constant (struct field)
	isConst bool
}

type gepPlan struct{ steps []gepStep }

// Prepare freezes a module for execution. The module must verify.
func Prepare(m *ir.Module) (*Prepared, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("prepare: %w", err)
	}
	p := &Prepared{
		Mod:    m,
		Layout: ir.ComputeLayout(m),
		frames: make(map[*ir.Function]*framePlan, len(m.Funcs)),
		geps:   make(map[*ir.Instr]*gepPlan),
	}
	p.SeqTotal = m.AssignSeq()
	for _, f := range m.Funcs {
		fp := &framePlan{allocas: make(map[*ir.Instr]uint64)}
		off := uint64(0)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloca:
					a := in.AllocTy.Align()
					off = (off + a - 1) / a * a
					fp.allocas[in] = off
					off += in.AllocTy.Size()
				case ir.OpGEP:
					plan, err := buildGEPPlan(in)
					if err != nil {
						return nil, fmt.Errorf("prepare @%s: %w", f.Name, err)
					}
					p.geps[in] = plan
				}
			}
		}
		fp.size = (off+15)/16*16 + minFrameBytes
		p.frames[f] = fp
	}
	return p, nil
}

func buildGEPPlan(in *ir.Instr) (*gepPlan, error) {
	base := in.Args[0].Type()
	if !base.IsPtr() {
		return nil, fmt.Errorf("gep base is %s", base)
	}
	plan := &gepPlan{steps: make([]gepStep, 0, len(in.Args)-1)}
	cur := base.Elem
	for i, idx := range in.Args[1:] {
		if i == 0 {
			plan.steps = append(plan.steps, gepStep{scale: cur.Size()})
			continue
		}
		switch cur.Kind {
		case ir.KindArray:
			cur = cur.Elem
			plan.steps = append(plan.steps, gepStep{scale: cur.Size()})
		case ir.KindStruct:
			c, ok := idx.(*ir.Const)
			if !ok {
				return nil, errors.New("gep struct index must be constant")
			}
			fi := int(c.Int())
			if fi < 0 || fi >= len(cur.Fields) {
				return nil, fmt.Errorf("gep struct index %d out of range", fi)
			}
			plan.steps = append(plan.steps, gepStep{offset: cur.FieldOffset(fi), isConst: true})
			cur = cur.Fields[fi]
		default:
			return nil, fmt.Errorf("gep steps into %s", cur)
		}
	}
	return plan, nil
}

// Injection describes a single-bit-flip fault to inject during one run and
// records what happened. Candidates is indexed by instruction Seq; the
// TriggerIndex-th dynamic execution of any candidate has one random bit of
// its result flipped.
type Injection struct {
	Candidates   []bool
	TriggerIndex uint64
	Rng          *rand.Rand

	// Results, filled during the run.
	Happened   bool
	Activated  bool
	Target     *ir.Instr
	Bit        int
	OrigVal    uint64
	FaultyVal  uint64
	InstrIndex uint64 // dynamic index at which the fault fired
}

// Runner executes one run of a prepared module against fresh memory.
//
// Execution is driven by an explicit frame stack rather than Go-stack
// recursion, so the complete machine state — frames, memory, counters —
// can be captured into a Snapshot between any two instructions and
// later resumed (the fast-forward replay path of the injectors).
type Runner struct {
	prog *Prepared
	mem  *mem.Memory
	out  io.Writer

	// MaxInstrs bounds dynamic instructions; exceeded => ErrHang.
	MaxInstrs uint64
	// Profile, when non-nil (length SeqTotal), counts executions of every
	// static instruction.
	Profile []uint64
	// Inject, when non-nil, arms a single fault injection.
	Inject *Injection
	// Trace, when non-nil, receives taint-propagation events.
	Trace *Tracer
	// SnapshotEvery, when > 0 together with SnapshotSink, captures a
	// state snapshot roughly every SnapshotEvery retired instructions
	// during Run. Capture is for golden runs only: it is skipped while an
	// injection is armed.
	SnapshotEvery uint64
	// SnapshotSink receives each captured snapshot.
	SnapshotSink func(*Snapshot)

	executed  uint64
	candCount uint64
	sp        uint64
	nextSnap  uint64

	stack []*frame

	watchFrame *frame
	watchInstr *ir.Instr

	env *rt.Env
}

// frame is one activation record on the explicit call stack. blk/prev/idx
// form the continuation: the next instruction to execute is
// blk.Instrs[idx] (for a frame with a callee above it, that instruction
// is the pending OpCall, completed when the callee returns).
type frame struct {
	fn     *ir.Function
	fp     *framePlan
	vals   []uint64
	params []uint64
	base   uint64 // frame base address (allocas live below it)

	savedSP uint64
	blk     *ir.Block
	prev    *ir.Block
	idx     int
}

// NewRunner creates a runner with fresh memory and globals installed.
func NewRunner(p *Prepared, out io.Writer) *Runner {
	m := mem.New()
	p.Layout.Install(m)
	r := &Runner{
		prog:      p,
		mem:       m,
		out:       out,
		MaxInstrs: DefaultMaxInstrs,
		sp:        mem.StackTop,
	}
	r.env = &rt.Env{Mem: m, Out: out}
	return r
}

// Memory exposes the runner's address space (for tests).
func (r *Runner) Memory() *mem.Memory { return r.mem }

// Executed reports the number of dynamic instructions retired.
func (r *Runner) Executed() uint64 { return r.executed }

// Run executes main() and returns its exit value. A *mem.Fault error is a
// simulated crash; ErrHang is a timeout.
func (r *Runner) Run() (int64, error) {
	mainFn := r.prog.Mod.Func("main")
	if mainFn == nil || len(mainFn.Blocks) == 0 {
		return 0, ErrNoMain
	}
	if r.SnapshotEvery > 0 {
		r.nextSnap = r.SnapshotEvery
	}
	if err := r.pushFrame(mainFn, nil); err != nil {
		return 0, err
	}
	return r.loop()
}

// pushFrame begins a call: stack-overflow check, frame allocation, and
// entry-block phi processing. The caller's frame (if any) stays parked on
// its OpCall instruction until the new frame returns.
func (r *Runner) pushFrame(fn *ir.Function, args []uint64) error {
	fp := r.prog.frames[fn]
	if r.sp < fp.size || r.sp-fp.size < mem.StackLimit {
		return &mem.Fault{Kind: mem.FaultStackOverflow, Addr: r.sp}
	}
	savedSP := r.sp
	r.sp -= fp.size
	base := r.sp
	if fp.size > minFrameBytes {
		r.mem.Map(base, fp.size)
	}
	fr := &frame{
		fn: fn, fp: fp,
		vals: make([]uint64, fn.NumValues()), params: args,
		base: base, savedSP: savedSP,
	}
	r.stack = append(r.stack, fr)
	return r.enterBlock(fr, fn.Entry(), nil)
}

// enterBlock positions a frame at the start of a block and executes its
// phi bundle. Phi nodes read their incoming values "in parallel" on
// block entry.
func (r *Runner) enterBlock(fr *frame, b *ir.Block, prev *ir.Block) error {
	fr.blk, fr.prev = b, prev
	instrs := b.Instrs
	nPhi := 0
	for nPhi < len(instrs) && instrs[nPhi].Op == ir.OpPhi {
		nPhi++
	}
	fr.idx = nPhi
	if nPhi == 0 {
		return nil
	}
	var tmp [8]uint64
	vals := tmp[:0]
	if nPhi > len(tmp) {
		vals = make([]uint64, 0, nPhi)
	}
	for i := 0; i < nPhi; i++ {
		in := instrs[i]
		// Activation check: phis read the incoming value of the edge
		// just taken.
		if r.watchInstr != nil && r.watchFrame == fr {
			for k, pb := range in.Blocks {
				if pb == prev && in.Args[k] == ir.Value(r.watchInstr) {
					r.Inject.Activated = true
					r.watchInstr = nil
					break
				}
			}
		}
		v, err := r.phiIncoming(fr, in, prev)
		if err != nil {
			return err
		}
		vals = append(vals, v)
	}
	for i := 0; i < nPhi; i++ {
		in := instrs[i]
		v, err := r.retire(fr, in, vals[i])
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
	}
	return nil
}

// loop drives the frame stack until the bottom frame returns. Each
// iteration executes exactly one instruction of the top frame; every
// top-of-loop point is a consistent snapshot boundary.
func (r *Runner) loop() (int64, error) {
	for {
		fr := r.stack[len(r.stack)-1]
		if fr.idx >= len(fr.blk.Instrs) {
			return 0, fmt.Errorf("block %s fell through", fr.blk.Name)
		}
		if r.nextSnap > 0 && r.executed >= r.nextSnap && r.SnapshotSink != nil {
			r.captureSnapshot()
		}
		in := fr.blk.Instrs[fr.idx]
		if r.executed >= r.MaxInstrs {
			return 0, ErrHang
		}
		// Activation check: once a fault has been injected, a read of the
		// corrupted SSA value by any later instruction activates it.
		if r.watchInstr != nil && r.watchFrame == fr {
			for _, a := range in.Args {
				if a == ir.Value(r.watchInstr) {
					r.Inject.Activated = true
					r.watchInstr = nil
					break
				}
			}
		}
		switch in.Op {
		case ir.OpBr:
			r.count(in)
			if err := r.enterBlock(fr, in.Blocks[0], fr.blk); err != nil {
				return 0, err
			}
		case ir.OpCondBr:
			c, err := r.eval(fr, in.Args[0])
			if err != nil {
				return 0, err
			}
			r.count(in)
			if r.Trace != nil {
				r.Trace.noteBranch(in, r.executed)
			}
			taken := in.Blocks[1]
			if c&1 != 0 {
				taken = in.Blocks[0]
			}
			if err := r.enterBlock(fr, taken, fr.blk); err != nil {
				return 0, err
			}
		case ir.OpRet:
			r.count(in)
			var v uint64
			if len(in.Args) == 1 {
				var err error
				v, err = r.eval(fr, in.Args[0])
				if err != nil {
					return 0, err
				}
			}
			r.sp = fr.savedSP
			r.stack = r.stack[:len(r.stack)-1]
			if len(r.stack) == 0 {
				return ir.SignExtend(v, fr.fn.Sig.Return), nil
			}
			if err := r.finishCall(r.stack[len(r.stack)-1], v); err != nil {
				return 0, err
			}
		case ir.OpCall:
			if err := r.startCall(fr, in); err != nil {
				return 0, err
			}
		default:
			if err := r.execInstr(fr, in, fr.fp); err != nil {
				return 0, err
			}
			fr.idx++
		}
	}
}

// startCall evaluates a call's arguments and either pushes a frame for a
// defined callee (leaving the caller parked on the OpCall) or runs the
// builtin and completes the call in place.
func (r *Runner) startCall(fr *frame, in *ir.Instr) error {
	args := make([]uint64, len(in.Args))
	for i, a := range in.Args {
		v, err := r.eval(fr, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if in.Callee != nil {
		if len(in.Callee.Blocks) == 0 {
			return fmt.Errorf("call to declaration @%s", in.Callee.Name)
		}
		return r.pushFrame(in.Callee, args)
	}
	v, err := rt.Call(r.env, in.Builtin, args)
	if err != nil {
		return err
	}
	return r.finishCall(fr, v)
}

// finishCall retires the OpCall a frame is parked on with the callee's
// (or builtin's) return value and advances past it.
func (r *Runner) finishCall(fr *frame, v uint64) error {
	in := fr.blk.Instrs[fr.idx]
	if in.HasResult() {
		v = ir.Canonical(v, in.Ty)
		rv, err := r.retire(fr, in, v)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = rv
	} else {
		r.count(in)
	}
	fr.idx++
	return nil
}

func (r *Runner) phiIncoming(fr *frame, in *ir.Instr, prev *ir.Block) (uint64, error) {
	for i, pb := range in.Blocks {
		if pb == prev {
			return r.eval(fr, in.Args[i])
		}
	}
	return 0, fmt.Errorf("phi in %s: no incoming edge from %v", in.Parent.Name, prev)
}

// count retires a non-value instruction (profiling + budget).
func (r *Runner) count(in *ir.Instr) {
	r.executed++
	if r.Profile != nil {
		r.Profile[in.Seq]++
	}
}

// retire finishes a value-producing instruction: profiling, injection, and
// taint tracking. It returns the (possibly corrupted) result.
func (r *Runner) retire(fr *frame, in *ir.Instr, v uint64) (uint64, error) {
	r.executed++
	if r.Profile != nil {
		r.Profile[in.Seq]++
	}
	// Taint propagation first: a re-executed instruction overwrites its
	// old taint unless an operand re-taints it. The injection (if it
	// fires here) then marks this very result as the taint root.
	if r.Trace != nil {
		r.Trace.propagate(in, v, r.executed)
	}
	if inj := r.Inject; inj != nil && !inj.Happened && inj.Candidates[in.Seq] {
		if inj.TriggerIndex == r.candCount {
			v = r.fireInjection(fr, in, v)
		}
		r.candCount++
	}
	return v, nil
}

// fireInjection flips one random bit of the result.
func (r *Runner) fireInjection(fr *frame, in *ir.Instr, v uint64) uint64 {
	inj := r.Inject
	width := valueBits(in.Ty)
	bit := inj.Rng.Intn(width)
	nv := ir.Canonical(v^(1<<uint(bit)), in.Ty)
	inj.Happened = true
	inj.Target = in
	inj.Bit = bit
	inj.OrigVal = v
	inj.FaultyVal = nv
	inj.InstrIndex = r.executed
	r.watchFrame = fr
	r.watchInstr = in
	if r.Trace != nil {
		r.Trace.markRoot(fr, in, r.executed)
	}
	return nv
}

// valueBits is the injectable width of a type: pointers are full machine
// words; integers are their declared width.
func valueBits(t *ir.Type) int {
	switch t.Kind {
	case ir.KindInt:
		return t.Bits
	default:
		return 64
	}
}

// eval resolves an operand to its runtime value.
func (r *Runner) eval(fr *frame, v ir.Value) (uint64, error) {
	switch x := v.(type) {
	case *ir.Instr:
		return fr.vals[x.ID], nil
	case *ir.Const:
		return x.Val, nil
	case *ir.Param:
		return fr.params[x.Index], nil
	case *ir.Global:
		return r.prog.Layout.Addr[x], nil
	case *ir.FuncValue:
		return 0, fmt.Errorf("function value %s not executable at IR level", x.Ident())
	default:
		return 0, fmt.Errorf("unknown operand %T", v)
	}
}

func (r *Runner) execInstr(fr *frame, in *ir.Instr, fp *framePlan) error {
	switch {
	case in.Op.IsIntArith():
		a, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		b, err := r.eval(fr, in.Args[1])
		if err != nil {
			return err
		}
		v, err := intArith(in, a, b)
		if err != nil {
			return err
		}
		v, err = r.retire(fr, in, v)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil
	case in.Op.IsFloatArith():
		a, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		b, err := r.eval(fr, in.Args[1])
		if err != nil {
			return err
		}
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var z float64
		switch in.Op {
		case ir.OpFAdd:
			z = x + y
		case ir.OpFSub:
			z = x - y
		case ir.OpFMul:
			z = x * y
		case ir.OpFDiv:
			z = x / y
		}
		v, err := r.retire(fr, in, math.Float64bits(z))
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil
	}

	switch in.Op {
	case ir.OpICmp, ir.OpFCmp:
		a, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		b, err := r.eval(fr, in.Args[1])
		if err != nil {
			return err
		}
		var t bool
		if in.Op == ir.OpICmp {
			t = icmp(in.Pred, a, b, in.Args[0].Type())
		} else {
			t = fcmp(in.Pred, math.Float64frombits(a), math.Float64frombits(b))
		}
		var v uint64
		if t {
			v = 1
		}
		v, err = r.retire(fr, in, v)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil

	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpFPToSI, ir.OpSIToFP,
		ir.OpPtrToInt, ir.OpIntToPtr, ir.OpBitcast:
		a, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		v := castValue(in, a)
		v, err = r.retire(fr, in, v)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil

	case ir.OpAlloca:
		v, err := r.retire(fr, in, fr.base+fp.allocas[in])
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil

	case ir.OpGEP:
		base, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		plan := r.prog.geps[in]
		addr := base
		for i, step := range plan.steps {
			if step.isConst {
				addr += step.offset
				continue
			}
			iv, err := r.eval(fr, in.Args[1+i])
			if err != nil {
				return err
			}
			addr += uint64(ir.SignExtend(iv, in.Args[1+i].Type())) * step.scale
		}
		v, err := r.retire(fr, in, addr)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil

	case ir.OpLoad:
		ptr, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		v, err := r.mem.Read(ptr, in.Ty.Size())
		if err != nil {
			return err
		}
		v = ir.Canonical(v, in.Ty)
		if r.Trace != nil {
			r.Trace.noteLoadAddr(ptr)
		}
		v, err = r.retire(fr, in, v)
		if err != nil {
			return err
		}
		fr.vals[in.ID] = v
		return nil

	case ir.OpStore:
		v, err := r.eval(fr, in.Args[0])
		if err != nil {
			return err
		}
		ptr, err := r.eval(fr, in.Args[1])
		if err != nil {
			return err
		}
		r.count(in)
		if r.Trace != nil {
			r.Trace.noteStore(in.Args[0], ptr, r.executed)
		}
		return r.mem.Write(ptr, in.Args[0].Type().Size(), v)
	}
	return fmt.Errorf("exec: unhandled op %s", in.Op)
}

func intArith(in *ir.Instr, a, b uint64) (uint64, error) {
	ty := in.Ty
	sa, sb := ir.SignExtend(a, ty), ir.SignExtend(b, ty)
	var v uint64
	switch in.Op {
	case ir.OpAdd:
		v = a + b
	case ir.OpSub:
		v = a - b
	case ir.OpMul:
		v = a * b
	case ir.OpSDiv:
		if sb == 0 {
			return 0, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		if sa == math.MinInt64 && sb == -1 {
			return 0, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		v = uint64(sa / sb)
	case ir.OpSRem:
		if sb == 0 || (sa == math.MinInt64 && sb == -1) {
			return 0, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		v = uint64(sa % sb)
	case ir.OpUDiv:
		if b == 0 {
			return 0, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		v = a / b
	case ir.OpURem:
		if b == 0 {
			return 0, &mem.Fault{Kind: mem.FaultDivideByZero}
		}
		v = a % b
	case ir.OpAnd:
		v = a & b
	case ir.OpOr:
		v = a | b
	case ir.OpXor:
		v = a ^ b
	case ir.OpShl:
		v = a << (b & 63)
	case ir.OpLShr:
		v = a >> (b & 63)
	case ir.OpAShr:
		v = uint64(sa >> (b & 63))
	}
	return ir.Canonical(v, ty), nil
}

func icmp(p ir.Pred, a, b uint64, ty *ir.Type) bool {
	sa, sb := ir.SignExtend(a, ty), ir.SignExtend(b, ty)
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return sa < sb
	case ir.PredLE:
		return sa <= sb
	case ir.PredGT:
		return sa > sb
	case ir.PredGE:
		return sa >= sb
	case ir.PredULT:
		return a < b
	case ir.PredULE:
		return a <= b
	case ir.PredUGT:
		return a > b
	case ir.PredUGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func castValue(in *ir.Instr, a uint64) uint64 {
	srcTy := in.Args[0].Type()
	switch in.Op {
	case ir.OpTrunc, ir.OpZExt:
		return ir.Canonical(a, in.Ty)
	case ir.OpSExt:
		return ir.Canonical(uint64(ir.SignExtend(a, srcTy)), in.Ty)
	case ir.OpFPToSI:
		f := math.Float64frombits(a)
		if math.IsNaN(f) {
			return 0
		}
		return ir.Canonical(uint64(int64(f)), in.Ty)
	case ir.OpSIToFP:
		return math.Float64bits(float64(ir.SignExtend(a, srcTy)))
	case ir.OpPtrToInt:
		return ir.Canonical(a, in.Ty)
	case ir.OpIntToPtr, ir.OpBitcast:
		return a
	}
	return a
}

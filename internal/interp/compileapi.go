package interp

import (
	"hlfi/internal/ir"
	"hlfi/internal/mem"
)

// This file is the read-only surface the compile-to-closure engine
// (internal/compile/irc) builds on. It exposes the Prepared analyses —
// frame plans, GEP stride plans — and the snapshot state, without
// letting the compiled engine reach into live interpreter internals.
// The exported views are copies or immutable data: the compiler runs
// once per (program, level) and must not alias interpreter state.

// MinFrameBytes is the modeled call-frame overhead (see minFrameBytes).
// The compiled engine replicates pushFrame exactly, including the rule
// that frames no larger than this are not eagerly mapped.
const MinFrameBytes = minFrameBytes

// FrameSize reports the stack-frame size Prepare computed for f.
func (p *Prepared) FrameSize(f *ir.Function) uint64 {
	return p.frames[f].size
}

// AllocaOffset reports the frame-base offset Prepare assigned to an
// OpAlloca instruction.
func (p *Prepared) AllocaOffset(in *ir.Instr) uint64 {
	return p.frames[in.Parent.Parent].allocas[in]
}

// GEPStep is the exported form of one GEP stride-plan step: either a
// scale for a (sign-extended) dynamic index or a constant struct-field
// offset.
type GEPStep struct {
	Scale   uint64
	Offset  uint64
	IsConst bool
}

// GEPSteps returns the stride plan Prepare built for an OpGEP
// instruction, in operand order.
func (p *Prepared) GEPSteps(in *ir.Instr) []GEPStep {
	plan := p.geps[in]
	out := make([]GEPStep, len(plan.steps))
	for i, s := range plan.steps {
		out[i] = GEPStep{Scale: s.scale, Offset: s.offset, IsConst: s.isConst}
	}
	return out
}

// FrameState is the exported view of one activation record of a
// Snapshot, in stack order (bottom first). Vals and Params are copies
// owned by the caller.
type FrameState struct {
	Fn      *ir.Function
	Blk     *ir.Block
	Prev    *ir.Block
	Idx     int
	Base    uint64
	SavedSP uint64
	Vals    []uint64
	Params  []uint64
}

// CloneState materializes a writable copy of the snapshot's machine
// state: a copy-on-write memory clone, the stack pointer, and the frame
// stack. Safe to call concurrently on one snapshot, like
// NewRunnerFromSnapshot.
func (s *Snapshot) CloneState() (*mem.Memory, uint64, []FrameState) {
	frames := make([]FrameState, len(s.frames))
	for i, fs := range s.frames {
		frames[i] = FrameState{
			Fn: fs.fn, Blk: fs.blk, Prev: fs.prev, Idx: fs.idx,
			Base: fs.base, SavedSP: fs.savedSP,
			Vals:   append([]uint64(nil), fs.vals...),
			Params: append([]uint64(nil), fs.params...),
		}
	}
	return s.mem.Clone(), s.sp, frames
}

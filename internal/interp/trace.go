package interp

import (
	"fmt"

	"hlfi/internal/ir"
)

// Tracer follows the propagation of an injected fault through the IR
// (LLFI's error-propagation analysis feature, paper §III). After the
// injection fires, every instruction that reads a tainted SSA value — or
// loads from a tainted memory word — becomes tainted itself and is
// recorded as a propagation event.
//
// Taint is tracked per static instruction (frames are not distinguished),
// which is the precision LLFI's trace offers and is ample for
// understanding propagation paths.
type Tracer struct {
	// MaxEvents caps the recorded log.
	MaxEvents int
	// Events is the propagation log in execution order.
	Events []TraceEvent

	taintedVals map[*ir.Instr]bool
	taintedMem  map[uint64]bool // 8-byte granules

	// lastLoadAddr is the resolved address of the load about to retire,
	// posted by the runner (operands alone cannot resolve global
	// addresses).
	lastLoadAddr    uint64
	lastLoadAddrSet bool
}

// TraceEvent is one step of fault propagation.
type TraceEvent struct {
	Instr *ir.Instr
	Func  string
	Value uint64
	// Via explains how taint reached the instruction ("operand" or
	// "memory").
	Via string
}

// NewTracer returns a tracer with the given event cap.
func NewTracer(maxEvents int) *Tracer {
	return &Tracer{
		MaxEvents:   maxEvents,
		taintedVals: make(map[*ir.Instr]bool),
		taintedMem:  make(map[uint64]bool),
	}
}

func (t *Tracer) markRoot(_ *frame, in *ir.Instr) {
	t.taintedVals[in] = true
	t.record(in, 0, "injection")
}

// propagate is called as each value-producing instruction retires.
func (t *Tracer) propagate(in *ir.Instr, v uint64) {
	if t.taintedVals[in] {
		// Re-execution of an already-tainted static instruction: its new
		// result overwrites the taint unless an operand keeps it tainted.
		delete(t.taintedVals, in)
	}
	via := ""
	for _, a := range in.Args {
		ai, ok := a.(*ir.Instr)
		if ok && t.taintedVals[ai] {
			via = "operand"
			break
		}
	}
	if via == "" && in.Op == ir.OpLoad && t.lastLoadAddrSet {
		if t.taintedMem[t.lastLoadAddr&^7] {
			via = "memory"
		}
	}
	t.lastLoadAddrSet = false
	if via == "" {
		return
	}
	t.taintedVals[in] = true
	t.record(in, v, via)
}

// noteStore lets the runner inform the tracer about stores of tainted
// values. Called from the store path when tracing is enabled.
func (t *Tracer) noteStore(valSrc ir.Value, addr uint64) {
	if vi, ok := valSrc.(*ir.Instr); ok && t.taintedVals[vi] {
		t.taintedMem[addr&^7] = true
	}
}

// noteLoadAddr posts the resolved address of the load about to retire.
func (t *Tracer) noteLoadAddr(addr uint64) {
	t.lastLoadAddr = addr
	t.lastLoadAddrSet = true
}

func (t *Tracer) record(in *ir.Instr, v uint64, via string) {
	if len(t.Events) >= t.MaxEvents {
		return
	}
	fn := ""
	if in.Parent != nil && in.Parent.Parent != nil {
		fn = in.Parent.Parent.Name
	}
	t.Events = append(t.Events, TraceEvent{Instr: in, Func: fn, Value: v, Via: via})
}

// String renders one event for display.
func (e TraceEvent) String() string {
	return fmt.Sprintf("@%s %s = 0x%x (via %s)", e.Func, e.Instr.String(), e.Value, e.Via)
}

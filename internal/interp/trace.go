package interp

import (
	"fmt"

	"hlfi/internal/ir"
)

// Tracer follows the propagation of an injected fault through the IR
// (LLFI's error-propagation analysis feature, paper §III). After the
// injection fires, every instruction that reads a tainted SSA value — or
// loads from a tainted memory word — becomes tainted itself and is
// recorded as a propagation event.
//
// Taint is tracked per static instruction (frames are not distinguished),
// which is the precision LLFI's trace offers and is ample for
// understanding propagation paths.
type Tracer struct {
	// MaxEvents caps the recorded log.
	MaxEvents int
	// Events is the propagation log in execution order.
	Events []TraceEvent

	// Spans is the bounded skeleton of the attempt's fault propagation:
	// the inject site, then the first tainted load, store, and branch
	// (at most one span of each kind). The outcome edge is appended by
	// the caller after classification, so a full attempt trace never
	// exceeds five spans.
	Spans []Span

	taintedVals map[*ir.Instr]bool
	taintedMem  map[uint64]bool // 8-byte granules

	seenLoad, seenStore, seenBranch bool

	// lastLoadAddr is the resolved address of the load about to retire,
	// posted by the runner (operands alone cannot resolve global
	// addresses).
	lastLoadAddr    uint64
	lastLoadAddrSet bool
}

// Span is one edge of the propagation skeleton. Kind is "inject",
// "load", "store", or "branch"; Site identifies the static instruction;
// At is the dynamic instruction index at which the edge was observed.
type Span struct {
	Kind string
	Site string
	At   uint64
}

// TraceEvent is one step of fault propagation.
type TraceEvent struct {
	Instr *ir.Instr
	Func  string
	Value uint64
	// Via explains how taint reached the instruction ("operand" or
	// "memory").
	Via string
}

// NewTracer returns a tracer with the given event cap.
func NewTracer(maxEvents int) *Tracer {
	return &Tracer{
		MaxEvents:   maxEvents,
		taintedVals: make(map[*ir.Instr]bool),
		taintedMem:  make(map[uint64]bool),
	}
}

func (t *Tracer) markRoot(_ *frame, in *ir.Instr, at uint64) {
	t.taintedVals[in] = true
	t.record(in, 0, "injection")
	t.Spans = append(t.Spans, Span{Kind: "inject", Site: site(in), At: at})
}

// propagate is called as each value-producing instruction retires.
func (t *Tracer) propagate(in *ir.Instr, v uint64, at uint64) {
	if t.taintedVals[in] {
		// Re-execution of an already-tainted static instruction: its new
		// result overwrites the taint unless an operand keeps it tainted.
		delete(t.taintedVals, in)
	}
	via := ""
	for _, a := range in.Args {
		ai, ok := a.(*ir.Instr)
		if ok && t.taintedVals[ai] {
			via = "operand"
			break
		}
	}
	if via == "" && in.Op == ir.OpLoad && t.lastLoadAddrSet {
		if t.taintedMem[t.lastLoadAddr&^7] {
			via = "memory"
		}
	}
	t.lastLoadAddrSet = false
	if via == "" {
		return
	}
	t.taintedVals[in] = true
	t.record(in, v, via)
	if in.Op == ir.OpLoad && !t.seenLoad {
		t.seenLoad = true
		t.Spans = append(t.Spans, Span{Kind: "load", Site: site(in), At: at})
	}
}

// noteStore lets the runner inform the tracer about stores of tainted
// values. Called from the store path when tracing is enabled.
func (t *Tracer) noteStore(valSrc ir.Value, addr uint64, at uint64) {
	vi, ok := valSrc.(*ir.Instr)
	if !ok || !t.taintedVals[vi] {
		return
	}
	t.taintedMem[addr&^7] = true
	if !t.seenStore {
		t.seenStore = true
		t.Spans = append(t.Spans, Span{Kind: "store", Site: site(vi), At: at})
	}
}

// noteBranch records the first conditional branch whose condition is a
// tainted value — the point where the fault starts steering control
// flow.
func (t *Tracer) noteBranch(in *ir.Instr, at uint64) {
	if t.seenBranch || len(in.Args) == 0 {
		return
	}
	if ci, ok := in.Args[0].(*ir.Instr); ok && t.taintedVals[ci] {
		t.seenBranch = true
		t.Spans = append(t.Spans, Span{Kind: "branch", Site: site(in), At: at})
	}
}

// site identifies a static instruction for span display.
func site(in *ir.Instr) string {
	fn := ""
	if in.Parent != nil && in.Parent.Parent != nil {
		fn = in.Parent.Parent.Name
	}
	return fmt.Sprintf("@%s %s", fn, in.String())
}

// noteLoadAddr posts the resolved address of the load about to retire.
func (t *Tracer) noteLoadAddr(addr uint64) {
	t.lastLoadAddr = addr
	t.lastLoadAddrSet = true
}

func (t *Tracer) record(in *ir.Instr, v uint64, via string) {
	if len(t.Events) >= t.MaxEvents {
		return
	}
	fn := ""
	if in.Parent != nil && in.Parent.Parent != nil {
		fn = in.Parent.Parent.Name
	}
	t.Events = append(t.Events, TraceEvent{Instr: in, Func: fn, Value: v, Via: via})
}

// String renders one event for display.
func (e TraceEvent) String() string {
	return fmt.Sprintf("@%s %s = 0x%x (via %s)", e.Func, e.Instr.String(), e.Value, e.Via)
}

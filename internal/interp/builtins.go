package interp

import (
	"hlfi/internal/rt"
)

// BuiltinSig aliases the shared runtime signature type; kept exported here
// because the frontend consults it when type-checking builtin calls.
type BuiltinSig = rt.Sig

// Builtins lists every runtime builtin and its signature.
var Builtins = rt.Sigs

// FormatDouble renders a double the way print_double does.
func FormatDouble(v float64) string { return rt.FormatDouble(v) }

package interp

import (
	"bytes"
	"io"

	"hlfi/internal/ir"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
)

// Snapshot is a resumable copy of a Runner's complete machine state,
// captured between two instructions of a golden run. It is immutable
// once captured: any number of replay runners can be built from it
// concurrently with NewRunnerFromSnapshot.
type Snapshot struct {
	// Executed is the dynamic instruction count at the capture point.
	Executed uint64
	// OutLen is how many bytes the program had written to its output
	// stream at the capture point (captured when the sink is a
	// bytes.Buffer, as in the injectors' golden runs).
	OutLen int
	// Profile is a copy of the per-static-instruction execution counts
	// at the capture point. It lets a replay compute, for any candidate
	// set, how many candidate executions precede the snapshot — so one
	// snapshot serves every fault category.
	Profile []uint64

	mem    *mem.Memory
	sp     uint64
	frames []frameState
}

// frameState is the serialized form of one activation record.
type frameState struct {
	fn      *ir.Function
	blk     *ir.Block
	prev    *ir.Block
	idx     int
	base    uint64
	savedSP uint64
	vals    []uint64
	params  []uint64
}

// captureSnapshot records the runner's state at the current loop
// boundary and hands it to the sink. Golden runs only: capture is
// skipped while an injection is armed (a corrupted intermediate state
// must never seed a replay).
func (r *Runner) captureSnapshot() {
	r.nextSnap = r.executed + r.SnapshotEvery
	if r.Inject != nil {
		return
	}
	s := &Snapshot{
		Executed: r.executed,
		mem:      r.mem.Snapshot(),
		sp:       r.sp,
		frames:   make([]frameState, len(r.stack)),
	}
	if r.Profile != nil {
		s.Profile = append([]uint64(nil), r.Profile...)
	}
	if b, ok := r.out.(*bytes.Buffer); ok {
		s.OutLen = b.Len()
	}
	for i, fr := range r.stack {
		s.frames[i] = frameState{
			fn: fr.fn, blk: fr.blk, prev: fr.prev, idx: fr.idx,
			base: fr.base, savedSP: fr.savedSP,
			vals:   append([]uint64(nil), fr.vals...),
			params: append([]uint64(nil), fr.params...),
		}
	}
	r.SnapshotSink(s)
}

// CandCount reports how many executions of candidate instructions
// precede this snapshot, i.e. the candCount a full run would have
// reached at the capture point. Candidates is indexed by Seq.
func (s *Snapshot) CandCount(candidates []bool) uint64 {
	var n uint64
	for seq, c := range candidates {
		if c && seq < len(s.Profile) {
			n += s.Profile[seq]
		}
	}
	return n
}

// Bytes is an upper bound on the snapshot's retained memory, used for
// cache budgeting. Pages shared with sibling snapshots are charged to
// each, so chains of snapshots over-count — a safe direction for a
// budget.
func (s *Snapshot) Bytes() uint64 {
	n := s.mem.FootprintBytes() + uint64(len(s.Profile))*8
	for _, fr := range s.frames {
		n += uint64(len(fr.vals)+len(fr.params)) * 8
	}
	return n
}

// NewRunnerFromSnapshot builds a runner that resumes execution from s,
// writing subsequent program output to out. The caller is responsible
// for prefilling out with the golden output prefix (s.OutLen bytes) if
// byte-identical streams are required. Safe to call concurrently on
// the same snapshot.
func NewRunnerFromSnapshot(p *Prepared, s *Snapshot, out io.Writer) *Runner {
	m := s.mem.Clone()
	r := &Runner{
		prog:      p,
		mem:       m,
		out:       out,
		MaxInstrs: DefaultMaxInstrs,
		executed:  s.Executed,
		sp:        s.sp,
		stack:     make([]*frame, len(s.frames)),
	}
	r.env = &rt.Env{Mem: m, Out: out}
	for i, fs := range s.frames {
		r.stack[i] = &frame{
			fn: fs.fn, fp: p.frames[fs.fn],
			vals:   append([]uint64(nil), fs.vals...),
			params: append([]uint64(nil), fs.params...),
			base:   fs.base, savedSP: fs.savedSP,
			blk: fs.blk, prev: fs.prev, idx: fs.idx,
		}
	}
	return r
}

// SetCandCount seeds the runner's candidate-execution counter, so an
// armed Injection's TriggerIndex means the same dynamic instruction it
// would in a full run. Use Snapshot.CandCount for the baseline.
func (r *Runner) SetCandCount(n uint64) { r.candCount = n }

// Resume continues execution from a snapshot-restored state to
// completion, exactly as the remainder of Run would.
func (r *Runner) Resume() (int64, error) {
	return r.loop()
}

package interp_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/mem"
	"hlfi/internal/minic"
)

func compile(t *testing.T, src string) *interp.Prepared {
	t.Helper()
	mod, err := minic.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return p
}

func runSrc(t *testing.T, src string) (string, int64, error) {
	t.Helper()
	p := compile(t, src)
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	rc, err := r.Run()
	return out.String(), rc, err
}

func TestArithmeticSemantics(t *testing.T) {
	out, _, err := runSrc(t, `
int main() {
    print_int(7 + 3); print_str(" ");
    print_int(7 - 13); print_str(" ");
    print_int(-7 * 3); print_str(" ");
    int a = -7; int b = 2;
    print_int(a / b); print_str(" ");   /* C truncates toward zero */
    print_int(a % b); print_str(" ");
    print_int(6 & 3); print_str(" ");
    print_int(6 | 3); print_str(" ");
    print_int(6 ^ 3); print_str(" ");
    print_int(1 << 10); print_str(" ");
    print_int(-8 >> 1); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	want := "10 -6 -21 -3 -1 2 7 5 1024 -4\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestIntegerOverflowWraps(t *testing.T) {
	out, _, err := runSrc(t, `
int main() {
    int big = 2147483647;
    big = big + 1;
    print_int(big); print_str(" ");
    char c = 127;
    c = c + 1;
    print_int(c); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "-2147483648 -128\n" {
		t.Fatalf("wraparound: %q", out)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	_, _, err := runSrc(t, `
int main() {
    int z = 0;
    print_int(5 / z);
    return 0;
}`)
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultDivideByZero {
		t.Fatalf("want divide fault, got %v", err)
	}
}

func TestNullDereferenceFaults(t *testing.T) {
	_, _, err := runSrc(t, `
int main() {
    int *p = 0;
    return *p;
}`)
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultNullDeref {
		t.Fatalf("want null fault, got %v", err)
	}
}

func TestWildPointerFaults(t *testing.T) {
	_, _, err := runSrc(t, `
int main() {
    long addr = 123456789012345L;
    int *p = (int*)addr;
    return *p;
}`)
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got %v", err)
	}
}

func TestInfiniteRecursionOverflows(t *testing.T) {
	_, _, err := runSrc(t, `
int down(int n) { return down(n + 1); }
int main() { return down(0); }`)
	var f *mem.Fault
	if !errors.As(err, &f) || f.Kind != mem.FaultStackOverflow {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestHangBudget(t *testing.T) {
	p := compile(t, `
int main() {
    long i = 0;
    while (1) { i++; }
    return 0;
}`)
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	r.MaxInstrs = 10000
	_, err := r.Run()
	if err != interp.ErrHang {
		t.Fatalf("want interp.ErrHang, got %v", err)
	}
}

func TestFloatSemantics(t *testing.T) {
	out, _, err := runSrc(t, `
int main() {
    double a = 1.5;
    double b = 0.25;
    print_double(a + b); print_str(" ");
    print_double(a * b); print_str(" ");
    print_double(a / 0.0); print_str(" ");
    print_int((int)(a * 2.0)); print_str(" ");
    print_double((double)7 / 2); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "1.75 0.375 +Inf 3 3.5\n" {
		t.Fatalf("floats: %q", out)
	}
}

func TestProfileCountsMatchExecution(t *testing.T) {
	p := compile(t, `
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) s += i;
    print_int(s);
    return 0;
}`)
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	r.Profile = make([]uint64, p.SeqTotal)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range r.Profile {
		sum += c
	}
	if sum != r.Executed() {
		t.Fatalf("profile sum %d != executed %d", sum, r.Executed())
	}
}

func TestInjectionDeterminism(t *testing.T) {
	p := compile(t, `
int main() {
    long s = 0;
    for (int i = 1; i <= 50; i++) s += i * i;
    print_long(s); print_str("\n");
    return 0;
}`)
	cands := make([]bool, p.SeqTotal)
	for i := range cands {
		cands[i] = true
	}
	run := func() (string, int, uint64, error) {
		var out bytes.Buffer
		r := interp.NewRunner(p, &out)
		r.Inject = &interp.Injection{Candidates: cands, TriggerIndex: 123, Rng: rand.New(rand.NewSource(9))}
		_, err := r.Run()
		return out.String(), r.Inject.Bit, r.Inject.FaultyVal, err
	}
	o1, b1, v1, e1 := run()
	o2, b2, v2, e2 := run()
	if o1 != o2 || b1 != b2 || v1 != v2 || (e1 == nil) != (e2 == nil) {
		t.Fatalf("injection not deterministic: (%q,%d,%x,%v) vs (%q,%d,%x,%v)",
			o1, b1, v1, e1, o2, b2, v2, e2)
	}
}

func TestInjectionFlipsExactlyOneBit(t *testing.T) {
	p := compile(t, `
int seedv = 21;
int main() {
    int y = 0;
    for (int i = 0; i < 4; i++) y += seedv * i;
    print_int(y);
    return 0;
}`)
	cands := make([]bool, p.SeqTotal)
	for i := range cands {
		cands[i] = true
	}
	for trigger := uint64(0); trigger < 5; trigger++ {
		var out bytes.Buffer
		r := interp.NewRunner(p, &out)
		inj := &interp.Injection{Candidates: cands, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(int64(trigger)))}
		r.Inject = inj
		_, _ = r.Run()
		if !inj.Happened {
			t.Fatalf("trigger %d: no injection", trigger)
		}
		diff := inj.OrigVal ^ inj.FaultyVal
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("trigger %d: diff %x is not exactly one bit", trigger, diff)
		}
		width := 64
		if inj.Target.Ty.IsInt() {
			width = inj.Target.Ty.Bits
		}
		if inj.Bit >= width {
			t.Fatalf("bit %d outside type width %d", inj.Bit, width)
		}
	}
}

// TestActivationThroughPhi regresses the bug where a value consumed only
// by a phi was reported non-activated despite corrupting the output.
func TestActivationThroughPhi(t *testing.T) {
	p := compile(t, `
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) s += i;
    print_int(s);
    return 0;
}`)
	// Find the add feeding the induction phi.
	var target *ir.Instr
	for _, f := range p.Mod.Funcs {
		uses := ir.ComputeUses(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAdd {
					us := uses.Uses(in)
					if len(us) == 1 && us[0].Op == ir.OpPhi {
						target = in
					}
				}
			}
		}
	}
	if target == nil {
		t.Skip("no phi-fed add found")
	}
	cands := make([]bool, p.SeqTotal)
	cands[target.Seq] = true
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	inj := &interp.Injection{Candidates: cands, TriggerIndex: 2, Rng: rand.New(rand.NewSource(1))}
	r.Inject = inj
	_, _ = r.Run()
	if !inj.Happened || !inj.Activated {
		t.Fatalf("phi-consumed fault not activated: happened=%v activated=%v", inj.Happened, inj.Activated)
	}
}

func TestTracerFollowsPropagation(t *testing.T) {
	p := compile(t, `
int a = 5;
int main() {
    int b = a * 3;
    int c = b + 1;
    print_int(c);
    return 0;
}`)
	// Inject into the multiply; the add and the call argument read it.
	var mul *ir.Instr
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMul {
					mul = in
				}
			}
		}
	}
	if mul == nil {
		t.Skip("mul folded away")
	}
	cands := make([]bool, p.SeqTotal)
	cands[mul.Seq] = true
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	r.Inject = &interp.Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(3))}
	tr := interp.NewTracer(10)
	r.Trace = tr
	_, _ = r.Run()
	if len(tr.Events) < 2 {
		t.Fatalf("trace too short: %v", tr.Events)
	}
	if tr.Events[0].Via != "injection" {
		t.Errorf("first event should be the root: %v", tr.Events[0])
	}
	if tr.Events[1].Via != "operand" {
		t.Errorf("second event should propagate via operand: %v", tr.Events[1])
	}
	if !strings.Contains(tr.Events[1].String(), "add") {
		t.Errorf("propagation target should be the add: %s", tr.Events[1])
	}
}

func TestExitCodeSignExtension(t *testing.T) {
	_, rc, err := runSrc(t, `int main() { return -5; }`)
	if err != nil || rc != -5 {
		t.Fatalf("rc=%d err=%v", rc, err)
	}
}

func TestMissingMain(t *testing.T) {
	mod, err := minic.Compile("t", `int helper() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interp.Prepare(mod)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := interp.NewRunner(p, &out).Run(); err != interp.ErrNoMain {
		t.Fatalf("want interp.ErrNoMain, got %v", err)
	}
}

func TestFloatBitsInjection(t *testing.T) {
	// Flipping the sign bit of a double result must negate it.
	p := compile(t, `
double x = 2.0;
int main() {
    double y = x * 3.0;
    print_double(y);
    return 0;
}`)
	var fmul *ir.Instr
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpFMul {
					fmul = in
				}
			}
		}
	}
	if fmul == nil {
		t.Skip("fmul folded")
	}
	cands := make([]bool, p.SeqTotal)
	cands[fmul.Seq] = true
	// Deterministically search for a seed whose bit is 63 (sign).
	for seed := int64(0); seed < 200; seed++ {
		var out bytes.Buffer
		r := interp.NewRunner(p, &out)
		inj := &interp.Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(seed))}
		r.Inject = inj
		if _, err := r.Run(); err != nil {
			continue
		}
		if inj.Bit == 63 {
			if math.Float64frombits(inj.FaultyVal) != -6.0 {
				t.Fatalf("sign flip of 6.0: %v", math.Float64frombits(inj.FaultyVal))
			}
			if out.String() != "-6" {
				t.Fatalf("output %q", out.String())
			}
			return
		}
	}
	t.Skip("no seed hit bit 63")
}

var _ = fault.OutcomeSDC // keep the fault import for documentation symmetry

// TestTracerMemoryPropagation follows taint through a store/load pair —
// the "via memory" edge of LLFI's propagation analysis.
func TestTracerMemoryPropagation(t *testing.T) {
	p := compile(t, `
int seed = 9;
int cell;
int main() {
    int v = seed * 7;   /* inject here */
    cell = v;           /* taint flows into memory */
    int w = cell + 1;   /* ...and back out */
    print_int(w);
    return 0;
}`)
	var mul *ir.Instr
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMul {
					mul = in
				}
			}
		}
	}
	if mul == nil {
		t.Fatal("mul missing")
	}
	cands := make([]bool, p.SeqTotal)
	cands[mul.Seq] = true
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	r.Inject = &interp.Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(8))}
	tr := interp.NewTracer(20)
	r.Trace = tr
	_, _ = r.Run()
	viaMemory := false
	for _, ev := range tr.Events {
		if ev.Via == "memory" {
			viaMemory = true
		}
	}
	if !viaMemory {
		t.Fatalf("no memory propagation recorded: %v", tr.Events)
	}
}

// TestRunnerMemoryAccessor keeps the debugging accessor alive and checked.
func TestRunnerMemoryAccessor(t *testing.T) {
	p := compile(t, `
int g = 7;
int main() { return g; }`)
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Memory() == nil || r.Memory().PageCount() == 0 {
		t.Fatal("runner memory should be populated")
	}
}

// TestFormatDoubleAccessor pins the shared formatting.
func TestFormatDoubleAccessor(t *testing.T) {
	if interp.FormatDouble(0.5) != "0.5" {
		t.Fatal("FormatDouble drifted")
	}
}

// TestNotActivatedOnUntakenPath: def-use filtering guarantees a use
// exists, but the use may sit on a branch that never executes; such
// faults must be classified not-activated.
func TestNotActivatedOnUntakenPath(t *testing.T) {
	p := compile(t, `
int flag = 0;
int shadow = 5;
int main() {
    int x = shadow * 11;   /* only read inside the untaken branch */
    if (flag) print_int(x);
    print_str("done\n");
    return 0;
}`)
	var mul *ir.Instr
	for _, f := range p.Mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpMul {
					mul = in
				}
			}
		}
	}
	if mul == nil {
		t.Skip("mul folded")
	}
	cands := make([]bool, p.SeqTotal)
	cands[mul.Seq] = true
	var out bytes.Buffer
	r := interp.NewRunner(p, &out)
	inj := &interp.Injection{Candidates: cands, TriggerIndex: 0, Rng: rand.New(rand.NewSource(1))}
	r.Inject = inj
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !inj.Happened {
		t.Fatal("injection did not fire")
	}
	if inj.Activated {
		t.Fatal("value read only on an untaken path must not count as activated")
	}
	if out.String() != "done\n" {
		t.Fatalf("output corrupted despite dead fault: %q", out.String())
	}
}

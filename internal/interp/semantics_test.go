package interp_test

import (
	"strings"
	"testing"
)

// TestStructAndHeapPrograms exercises GEP plans over structs, malloc'd
// linked structures, and nested arrays through the interpreter.
func TestStructAndHeapPrograms(t *testing.T) {
	out, rc, err := runSrc(t, `
struct vec { double x; double y; double z; };
struct item { int id; struct vec pos; struct item *next; };

double dot(struct vec *a, struct vec *b) {
    return a->x * b->x + a->y * b->y + a->z * b->z;
}

int main() {
    struct item *head = 0;
    for (int i = 1; i <= 5; i++) {
        struct item *it = (struct item*)malloc(sizeof(struct item));
        it->id = i;
        it->pos.x = (double)i;
        it->pos.y = (double)(i * i);
        it->pos.z = 1.0;
        it->next = head;
        head = it;
    }
    double acc = 0.0;
    int ids = 0;
    struct item *p = head;
    while (p) {
        acc += dot(&p->pos, &p->pos);
        ids = ids * 10 + p->id;
        p = p->next;
    }
    print_double(acc); print_str(" ");
    print_int(ids); print_str("\n");
    return head->id;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// acc = sum(i^2 + i^4 + 1) for i=1..5 = 55 + 979 + 5 = 1039
	if !strings.HasPrefix(out, "1039 54321") {
		t.Fatalf("output %q", out)
	}
	if rc != 5 {
		t.Fatalf("rc %d", rc)
	}
}

func Test2DArraysAndGlobalsInit(t *testing.T) {
	out, _, err := runSrc(t, `
int weights[3] = {10, 20, 30};
char tag[8] = "mx";
int m[3][3];

int main() {
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 3; j++)
            m[i][j] = (i + 1) * weights[j];
    int trace = m[0][0] + m[1][1] + m[2][2];
    print_str(tag); print_str("=");
    print_int(trace); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "mx=140\n" {
		t.Fatalf("output %q", out)
	}
}

func TestCharPointerWalk(t *testing.T) {
	out, _, err := runSrc(t, `
char text[32] = "fault injection";
int main() {
    int vowels = 0;
    char *p = text;
    while (*p) {
        char c = *p;
        if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') vowels++;
        p++;
    }
    print_int(vowels); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "6\n" {
		t.Fatalf("vowels: %q", out)
	}
}

func TestLongArithmeticEdges(t *testing.T) {
	out, _, err := runSrc(t, `
long big = 4611686018427387904L; /* 2^62 */
int main() {
    long d = big + big;               /* overflows to -2^63 */
    print_long(d); print_str(" ");
    long e = big >> 60;
    print_long(e); print_str(" ");
    long f = (long)(int)4294967296L;  /* truncates to 0 */
    print_long(f); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "-9223372036854775808 4 0\n" {
		t.Fatalf("long edges: %q", out)
	}
}

func TestDoubleSpecials(t *testing.T) {
	out, _, err := runSrc(t, `
double zero = 0.0;
int main() {
    double inf = 1.0 / zero;
    double ninf = -1.0 / zero;
    double nan = inf + ninf;
    print_double(inf); print_str(" ");
    print_double(ninf); print_str(" ");
    print_double(nan); print_str(" ");
    print_int(nan == nan); print_str(" ");
    print_int(inf > 1000000.0); print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "+Inf -Inf NaN 0 1\n" {
		t.Fatalf("specials: %q", out)
	}
}

// TestRecursiveDataStructures: a binary search tree exercises deep
// pointer graphs and recursion together.
func TestRecursiveDataStructures(t *testing.T) {
	out, _, err := runSrc(t, `
struct node { int key; struct node *l; struct node *r; };

struct node *insert(struct node *t, int key) {
    if (!t) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->key = key;
        n->l = 0;
        n->r = 0;
        return n;
    }
    if (key < t->key) t->l = insert(t->l, key);
    else t->r = insert(t->r, key);
    return t;
}

void inorder(struct node *t) {
    if (!t) return;
    inorder(t->l);
    print_int(t->key);
    print_str(" ");
    inorder(t->r);
}

int depth(struct node *t) {
    if (!t) return 0;
    int dl = depth(t->l);
    int dr = depth(t->r);
    return 1 + (dl > dr ? dl : dr);
}

long seedv = 1234;
int nextRand() {
    seedv = seedv * 1103515245 + 12345;
    long x = seedv >> 16;
    if (x < 0) x = -x;
    return (int)(x % 100);
}

int main() {
    struct node *root = 0;
    for (int i = 0; i < 12; i++) root = insert(root, nextRand());
    inorder(root);
    print_str("| depth=");
    print_int(depth(root));
    print_str("\n");
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "depth=") {
		t.Fatalf("bst output: %q", out)
	}
	// In-order traversal must be sorted.
	fields := strings.Fields(strings.Split(out, "|")[0])
	prev := -1
	for _, f := range fields {
		v := 0
		for _, ch := range f {
			v = v*10 + int(ch-'0')
		}
		if v < prev {
			t.Fatalf("inorder not sorted: %q", out)
		}
		prev = v
	}
}

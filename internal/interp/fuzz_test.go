package interp_test

import (
	"bytes"
	"fmt"
	"testing"

	"hlfi/internal/interp"
	"hlfi/internal/minic"
)

// fuzzBudget bounds fuzzed executions so pathological loops finish as
// ErrHang quickly instead of eating the fuzzing time box.
const fuzzBudget = 50_000

// FuzzSnapshotRestore checks the snapshot engine's core invariant on
// arbitrary programs: capturing snapshots must not perturb execution,
// and resuming from any snapshot must finish with exactly the state a
// straight-line run reaches — same output bytes, exit code, error, and
// instruction count.
func FuzzSnapshotRestore(f *testing.F) {
	f.Add("int main(){int s=0;for(int i=0;i<50;i++)s+=i;print_long(s);return 0;}", uint64(37))
	f.Add(`int arr[8];
int main() {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) { arr[i] = i * 3; acc = acc + (double)arr[i]; }
    long sum = 0;
    for (int i = 0; i < 8; i++) sum += arr[i];
    print_long(sum); print_str(" "); print_double(acc); print_str("\n");
    return 0;
}`, uint64(111))
	f.Add("int f(int n){ if (n < 2) return n; return f(n-1)+f(n-2); } int main(){ print_long(f(12)); return 0; }", uint64(500))
	f.Add("int main(){ int *p = 0; return *p; }", uint64(3))
	f.Add("int main(){ for(;;){} return 0; }", uint64(64))

	f.Fuzz(func(t *testing.T, src string, strideSeed uint64) {
		mod, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Skip()
		}
		p, err := interp.Prepare(mod)
		if err != nil {
			t.Skip()
		}

		var out1 bytes.Buffer
		r1 := interp.NewRunner(p, &out1)
		r1.MaxInstrs = fuzzBudget
		exit1, err1 := r1.Run()

		stride := strideSeed%2048 + 16
		var out2 bytes.Buffer
		var snaps []*interp.Snapshot
		r2 := interp.NewRunner(p, &out2)
		r2.MaxInstrs = fuzzBudget
		r2.SnapshotEvery = stride
		r2.SnapshotSink = func(s *interp.Snapshot) { snaps = append(snaps, s) }
		exit2, err2 := r2.Run()

		if exit1 != exit2 || fmt.Sprint(err1) != fmt.Sprint(err2) ||
			!bytes.Equal(out1.Bytes(), out2.Bytes()) || r1.Executed() != r2.Executed() {
			t.Fatalf("snapshot capture perturbed execution: (%d,%v,%q,%d) != (%d,%v,%q,%d)",
				exit1, err1, out1.Bytes(), r1.Executed(), exit2, err2, out2.Bytes(), r2.Executed())
		}

		// Resume from up to 8 snapshots spread over the run.
		step := 1
		if len(snaps) > 8 {
			step = len(snaps) / 8
		}
		for i := 0; i < len(snaps); i += step {
			s := snaps[i]
			var out3 bytes.Buffer
			out3.Write(out1.Bytes()[:s.OutLen])
			r3 := interp.NewRunnerFromSnapshot(p, s, &out3)
			r3.MaxInstrs = fuzzBudget
			exit3, err3 := r3.Resume()
			if exit1 != exit3 || fmt.Sprint(err1) != fmt.Sprint(err3) ||
				!bytes.Equal(out1.Bytes(), out3.Bytes()) || r1.Executed() != r3.Executed() {
				t.Fatalf("resume from snapshot %d (at %d instrs) diverged: (%d,%v,%q,%d) != (%d,%v,%q,%d)",
					i, s.Executed, exit1, err1, out1.Bytes(), r1.Executed(),
					exit3, err3, out3.Bytes(), r3.Executed())
			}
		}
	})
}

package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 4096)
	cases := []struct {
		addr uint64
		size uint64
		val  uint64
	}{
		{GlobalsBase, 1, 0xAB},
		{GlobalsBase + 1, 2, 0xBEEF},
		{GlobalsBase + 8, 4, 0xDEADBEEF},
		{GlobalsBase + 16, 8, 0x0123456789ABCDEF},
		{GlobalsBase + 100, 8, ^uint64(0)},
	}
	for _, c := range cases {
		if err := m.Write(c.addr, c.size, c.val); err != nil {
			t.Fatalf("write %x: %v", c.addr, err)
		}
		got, err := m.Read(c.addr, c.size)
		if err != nil {
			t.Fatalf("read %x: %v", c.addr, err)
		}
		want := c.val
		if c.size < 8 {
			want &= 1<<(8*c.size) - 1
		}
		if got != want {
			t.Errorf("roundtrip at %x size %d: got %x want %x", c.addr, c.size, got, want)
		}
	}
}

func TestWriteCrossesPageBoundary(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 2*PageSize)
	addr := GlobalsBase + PageSize - 3 // 8-byte write spans two pages
	if err := m.Write(addr, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Fatalf("cross-page read: %x", v)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, PageSize)
	if err := m.Write(GlobalsBase, 4, 0x04030201); err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		b, err := m.Read(GlobalsBase+uint64(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if b != want {
			t.Errorf("byte %d: got %d want %d", i, b, want)
		}
	}
}

func TestFaults(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, PageSize)
	cases := []struct {
		name string
		addr uint64
		kind FaultKind
	}{
		{"null", 0, FaultNullDeref},
		{"near-null", 100, FaultNullDeref},
		{"unmapped", GlobalsBase + 10*PageSize, FaultUnmapped},
		{"non-canonical", Canonical + 8, FaultNonCanonical},
		{"wild-high", 1 << 46, FaultUnmapped},
	}
	for _, c := range cases {
		_, err := m.Read(c.addr, 8)
		var f *Fault
		if !errors.As(err, &f) {
			t.Fatalf("%s: expected fault, got %v", c.name, err)
		}
		if f.Kind != c.kind {
			t.Errorf("%s: kind %v, want %v", c.name, f.Kind, c.kind)
		}
	}
}

func TestStackAutoGrow(t *testing.T) {
	m := New()
	// Writes within the stack region map pages on demand.
	if err := m.Write(StackTop-64, 8, 42); err != nil {
		t.Fatalf("stack write: %v", err)
	}
	if err := m.Write(StackLimit+8, 8, 7); err != nil {
		t.Fatalf("deep stack write: %v", err)
	}
	// Past the limit is a stack overflow.
	_, err := m.Read(StackLimit-16, 8)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStackOverflow {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestAllocator(t *testing.T) {
	m := New()
	a := m.Alloc(100)
	b := m.Alloc(100)
	if a == b {
		t.Fatal("distinct allocations share an address")
	}
	if a%16 != 0 || b%16 != 0 {
		t.Fatal("allocations not 16-byte aligned")
	}
	if !m.Mapped(a, 100) || !m.Mapped(b, 100) {
		t.Fatal("allocations not mapped")
	}
	// Freed blocks of the same size class are recycled, zeroed.
	if err := m.Write(a, 8, 0xFFFF); err != nil {
		t.Fatal(err)
	}
	m.Free(a)
	c := m.Alloc(97) // same 112-byte size class
	if c != a {
		t.Fatalf("free list not reused: got %x want %x", c, a)
	}
	v, _ := m.Read(c, 8)
	if v != 0 {
		t.Fatalf("recycled memory not zeroed: %x", v)
	}
	// Freeing garbage is a no-op.
	m.Free(0xDEAD0000)
	m.Free(a + 8)
}

func TestAllocZeroSize(t *testing.T) {
	m := New()
	a := m.Alloc(0)
	if !m.Mapped(a, 1) {
		t.Fatal("zero-size alloc returned unmapped address")
	}
}

func TestMappedRanges(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 2*PageSize)
	m.Map(HeapBase, PageSize)
	ranges := m.MappedRanges()
	if len(ranges) != 2 {
		t.Fatalf("ranges: %v", ranges)
	}
	if ranges[0][0] != GlobalsBase || ranges[0][1] != GlobalsBase+2*PageSize {
		t.Errorf("globals range: %v", ranges[0])
	}
}

// Property: for any offset/value/size, write-then-read returns the
// truncated value and leaves neighbours untouched.
func TestQuickWriteRead(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 64*PageSize)
	f := func(off uint32, val uint64, szSel uint8) bool {
		size := uint64(1) << (szSel % 4) // 1,2,4,8
		addr := GlobalsBase + uint64(off%(60*PageSize))
		sentinelAddr := addr + 2*PageSize
		if err := m.Write(sentinelAddr, 8, 0x5A5A5A5A5A5A5A5A); err != nil {
			return false
		}
		if err := m.Write(addr, size, val); err != nil {
			return false
		}
		got, err := m.Read(addr, size)
		if err != nil {
			return false
		}
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		sentinel, _ := m.Read(sentinelAddr, 8)
		return got == want && sentinel == 0x5A5A5A5A5A5A5A5A
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultMessages(t *testing.T) {
	for _, k := range []FaultKind{FaultUnmapped, FaultNonCanonical, FaultNullDeref,
		FaultStackOverflow, FaultDivideByZero, FaultBadCodeAddr, FaultInvalidOp} {
		f := &Fault{Kind: k, Addr: 0x1234}
		if f.Error() == "" || k.String() == "unknown fault" {
			t.Errorf("kind %d has no message", k)
		}
	}
}

package mem

import (
	"sync"
	"testing"
)

func TestSnapshotIsolatesLaterWrites(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 2*PageSize)
	if err := m.Write(GlobalsBase, 8, 0x1111); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	// Writes after the snapshot must not leak into it.
	if err := m.Write(GlobalsBase, 8, 0x2222); err != nil {
		t.Fatal(err)
	}
	v, err := snap.Read(GlobalsBase, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Fatalf("snapshot saw post-capture write: got %#x, want 0x1111", v)
	}
	if v, _ := m.Read(GlobalsBase, 8); v != 0x2222 {
		t.Fatalf("live memory lost its write: got %#x", v)
	}
}

func TestCloneIsWritableAndIsolated(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, PageSize)
	if err := m.Write(GlobalsBase, 8, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()

	c1 := snap.Clone()
	c2 := snap.Clone()
	if err := c1.Write(GlobalsBase, 8, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	for name, mm := range map[string]*Memory{"snapshot": snap, "clone2": c2, "live": m} {
		v, err := mm.Read(GlobalsBase, 8)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0xAAAA {
			t.Fatalf("%s saw clone1's write: got %#x, want 0xAAAA", name, v)
		}
	}
	if v, _ := c1.Read(GlobalsBase, 8); v != 0xBBBB {
		t.Fatalf("clone lost its write: got %#x", v)
	}
}

func TestCloneCarriesHeapState(t *testing.T) {
	m := New()
	a := m.Alloc(64)
	m.Free(a)
	snap := m.Snapshot()

	// Both the live memory and a clone must reuse the freed block
	// identically: the allocator is part of the deterministic state.
	liveAddr := m.Alloc(64)
	cloneAddr := snap.Clone().Alloc(64)
	if liveAddr != cloneAddr {
		t.Fatalf("allocator diverged after clone: live=%#x clone=%#x", liveAddr, cloneAddr)
	}
	if liveAddr != a {
		t.Fatalf("free list not reused: got %#x, want %#x", liveAddr, a)
	}
}

func TestCloneOfLiveMemoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of a live memory did not panic")
		}
	}()
	New().Clone()
}

func TestConcurrentClonesFromOneSnapshot(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 4*PageSize)
	for i := uint64(0); i < 4; i++ {
		if err := m.Write(GlobalsBase+i*PageSize, 8, i+1); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := snap.Clone()
			if err := c.Write(GlobalsBase, 8, uint64(0x100+w)); err != nil {
				t.Error(err)
				return
			}
			for i := uint64(1); i < 4; i++ {
				v, err := c.Read(GlobalsBase+i*PageSize, 8)
				if err != nil {
					t.Error(err)
					return
				}
				if v != i+1 {
					t.Errorf("clone %d page %d: got %d, want %d", w, i, v, i+1)
				}
			}
		}(w)
	}
	wg.Wait()

	if v, _ := snap.Read(GlobalsBase, 8); v != 1 {
		t.Fatalf("snapshot corrupted by concurrent clones: got %#x", v)
	}
}

func TestSnapshotChainSharesUnchangedPages(t *testing.T) {
	m := New()
	m.Map(GlobalsBase, 2*PageSize)
	if err := m.Write(GlobalsBase, 8, 1); err != nil {
		t.Fatal(err)
	}
	s1 := m.Snapshot()
	if err := m.Write(GlobalsBase, 8, 2); err != nil { // copies page 0
		t.Fatal(err)
	}
	s2 := m.Snapshot()
	if err := m.Write(GlobalsBase+PageSize, 8, 3); err != nil {
		t.Fatal(err)
	}

	for want, s := range map[uint64]*Memory{1: s1, 2: s2} {
		if v, _ := s.Read(GlobalsBase, 8); v != want {
			t.Fatalf("snapshot chain: got %d, want %d", v, want)
		}
		if v, _ := s.Read(GlobalsBase+PageSize, 8); v != 0 {
			t.Fatalf("snapshot saw post-capture write to page 1: %d", v)
		}
	}
	if s1.FootprintBytes() != 2*PageSize || s2.FootprintBytes() != 2*PageSize {
		t.Fatalf("footprint: s1=%d s2=%d, want %d", s1.FootprintBytes(), s2.FootprintBytes(), 2*PageSize)
	}
}

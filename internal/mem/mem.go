// Package mem implements the sparse paged virtual memory shared by the IR
// interpreter and the assembly-level machine simulator.
//
// It stands in for the operating system's virtual memory and the MMU: both
// execution levels of a program see the same byte-addressed 64-bit address
// space, and an access to an unmapped or non-canonical address raises a
// simulated hardware exception, which the fault-injection framework
// classifies as a Crash. Keeping the mapped set sparse is deliberate — a bit
// flip in the high bits of a pointer almost always leaves the mapped set,
// exactly as on real hardware.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the granularity of the sparse address space.
const PageSize = 4096

// Standard segment layout. The null page (and everything below NullGuard)
// is never mapped so that near-null dereferences fault.
const (
	// NullGuard is the lowest mappable address.
	NullGuard uint64 = 0x1_0000
	// GlobalsBase is where the program's global/static data image is loaded.
	GlobalsBase uint64 = 0x10_0000
	// HeapBase is the bottom of the dynamic allocation arena.
	HeapBase uint64 = 0x1000_0000
	// StackTop is the initial (highest) stack address; stacks grow down.
	StackTop uint64 = 0x7FFF_F000
	// StackLimit bounds stack growth; accesses below it overflow.
	StackLimit uint64 = StackTop - 4*1024*1024
	// CodeBase is where the machine simulator pretends code lives. Each
	// instruction occupies CodeStride bytes so corrupted return addresses
	// are meaningful (and usually invalid).
	CodeBase uint64 = 0x40_0000
	// CodeStride is the fake size of one machine instruction.
	CodeStride uint64 = 4
	// Canonical is the first non-canonical address; accesses at or above
	// it fault regardless of the mapped set.
	Canonical uint64 = 1 << 47
)

// FaultKind enumerates the simulated hardware exceptions.
type FaultKind int

// Fault kinds.
const (
	FaultUnmapped FaultKind = iota + 1
	FaultNonCanonical
	FaultNullDeref
	FaultStackOverflow
	FaultDivideByZero
	FaultBadCodeAddr
	FaultInvalidOp
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "segmentation fault (unmapped)"
	case FaultNonCanonical:
		return "general protection fault (non-canonical)"
	case FaultNullDeref:
		return "segmentation fault (null)"
	case FaultStackOverflow:
		return "stack overflow"
	case FaultDivideByZero:
		return "divide error"
	case FaultBadCodeAddr:
		return "invalid instruction address"
	case FaultInvalidOp:
		return "invalid operation"
	default:
		return "unknown fault"
	}
}

// Fault is a simulated hardware exception. The fault-injection framework
// classifies a run that terminates with a Fault as a Crash.
type Fault struct {
	Kind FaultKind
	Addr uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s at 0x%x", f.Kind, f.Addr)
}

// Memory is a sparse paged 64-bit address space with a simple heap
// allocator. The zero value is not usable; call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// cow marks pages shared with a snapshot: they must be duplicated
	// before the first write. nil until the first Snapshot call, so
	// snapshot-free runs pay nothing.
	cow map[uint64]bool
	// frozen marks a memory returned by Snapshot. Frozen memories are
	// never written; Clone materializes writable copies from them.
	frozen bool

	heapNext uint64
	// free lists allocator metadata outside the simulated address space;
	// allocation headers would otherwise be silently corruptible, which
	// is a realism we trade for determinism of the allocator itself.
	allocSize map[uint64]uint64
	freeList  map[uint64][]uint64 // rounded size -> addresses
}

// New returns an empty address space with an initialized heap arena.
func New() *Memory {
	return &Memory{
		pages:     make(map[uint64]*[PageSize]byte),
		heapNext:  HeapBase,
		allocSize: make(map[uint64]uint64),
		freeList:  make(map[uint64][]uint64),
	}
}

// Map ensures [addr, addr+size) is mapped, allocating zeroed pages.
func (m *Memory) Map(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if m.pages[p] == nil {
			m.pages[p] = new([PageSize]byte)
		}
	}
}

// Mapped reports whether every byte of [addr, addr+size) is mapped.
func (m *Memory) Mapped(addr, size uint64) bool {
	if size == 0 {
		return true
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if m.pages[p] == nil {
			return false
		}
	}
	return true
}

// check validates an access and returns the fault to raise, if any.
func (m *Memory) check(addr, size uint64) error {
	if addr >= Canonical || addr+size > Canonical {
		return &Fault{Kind: FaultNonCanonical, Addr: addr}
	}
	if addr < NullGuard {
		return &Fault{Kind: FaultNullDeref, Addr: addr}
	}
	if !m.Mapped(addr, size) {
		// The stack region auto-grows, like guard-page stacks on a real
		// OS; running past its limit is a stack overflow.
		if addr < StackTop && addr+size > StackLimit {
			m.Map(addr, size)
			return nil
		}
		if addr < StackLimit && addr >= StackLimit-PageSize {
			return &Fault{Kind: FaultStackOverflow, Addr: addr}
		}
		return &Fault{Kind: FaultUnmapped, Addr: addr}
	}
	return nil
}

// Read reads size (1..8) bytes little-endian at addr.
func (m *Memory) Read(addr, size uint64) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	var buf [8]byte
	m.copyOut(addr, buf[:size])
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Write writes the low size (1..8) bytes of val little-endian at addr.
func (m *Memory) Write(addr, size, val uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	m.copyIn(addr, buf[:size])
	return nil
}

// ReadBytes copies len(dst) bytes from addr.
func (m *Memory) ReadBytes(addr uint64, dst []byte) error {
	if err := m.check(addr, uint64(len(dst))); err != nil {
		return err
	}
	m.copyOut(addr, dst)
	return nil
}

// WriteBytes copies src to addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) error {
	if err := m.check(addr, uint64(len(src))); err != nil {
		return err
	}
	m.copyIn(addr, src)
	return nil
}

func (m *Memory) copyOut(addr uint64, dst []byte) {
	for len(dst) > 0 {
		page := m.pages[addr/PageSize]
		off := addr % PageSize
		n := copy(dst, page[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

func (m *Memory) copyIn(addr uint64, src []byte) {
	for len(src) > 0 {
		pnum := addr / PageSize
		page := m.pages[pnum]
		if m.cow != nil && m.cow[pnum] {
			// The page is shared with a snapshot: duplicate before the
			// first write so the snapshot's view stays intact.
			np := new([PageSize]byte)
			*np = *page
			m.pages[pnum] = np
			delete(m.cow, pnum)
			page = np
		}
		off := addr % PageSize
		n := copy(page[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// Snapshot freezes the current contents into a copy-on-write snapshot:
// the returned memory shares every page with the live one, and the live
// memory duplicates a shared page before its first subsequent write.
// Snapshots are immutable (never write through them); use Clone to
// materialize a writable address space from one. Capturing is O(mapped
// pages) in map bookkeeping only — no page data is copied.
func (m *Memory) Snapshot() *Memory {
	if m.cow == nil {
		m.cow = make(map[uint64]bool, len(m.pages))
	}
	s := &Memory{
		pages:     make(map[uint64]*[PageSize]byte, len(m.pages)),
		cow:       make(map[uint64]bool, len(m.pages)),
		frozen:    true,
		heapNext:  m.heapNext,
		allocSize: make(map[uint64]uint64, len(m.allocSize)),
		freeList:  make(map[uint64][]uint64, len(m.freeList)),
	}
	for p, pg := range m.pages {
		s.pages[p] = pg
		s.cow[p] = true
		m.cow[p] = true
	}
	for a, sz := range m.allocSize {
		s.allocSize[a] = sz
	}
	for sz, list := range m.freeList {
		s.freeList[sz] = append([]uint64(nil), list...)
	}
	return s
}

// Clone materializes a writable address space from a frozen snapshot.
// Every page starts shared copy-on-write, so restoring costs O(mapped
// pages) map work and pages are copied only as the resumed run writes
// them. Clone never mutates the snapshot, so any number of goroutines
// may Clone the same snapshot concurrently.
func (m *Memory) Clone() *Memory {
	if !m.frozen {
		panic("mem: Clone of a live memory (use Snapshot first)")
	}
	c := &Memory{
		pages:     make(map[uint64]*[PageSize]byte, len(m.pages)),
		cow:       make(map[uint64]bool, len(m.pages)),
		heapNext:  m.heapNext,
		allocSize: make(map[uint64]uint64, len(m.allocSize)),
		freeList:  make(map[uint64][]uint64, len(m.freeList)),
	}
	for p, pg := range m.pages {
		c.pages[p] = pg
		c.cow[p] = true
	}
	for a, sz := range m.allocSize {
		c.allocSize[a] = sz
	}
	for sz, list := range m.freeList {
		c.freeList[sz] = append([]uint64(nil), list...)
	}
	return c
}

// FootprintBytes is an upper bound on the resident size of this memory's
// page data, counting shared copy-on-write pages as if private. The
// snapshot cache uses it for budget accounting.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(len(m.pages)) * PageSize
}

// roundAlloc rounds a request up to a 16-byte-aligned size class.
func roundAlloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + 15) &^ 15
}

// Alloc allocates size bytes on the heap and returns the (16-byte aligned)
// address. Freed blocks of the same size class are reused first.
func (m *Memory) Alloc(size uint64) uint64 {
	rounded := roundAlloc(size)
	if list := m.freeList[rounded]; len(list) > 0 {
		addr := list[len(list)-1]
		m.freeList[rounded] = list[:len(list)-1]
		m.allocSize[addr] = rounded
		// Zero recycled memory so runs are deterministic.
		zero := make([]byte, rounded)
		m.copyIn(addr, zero)
		return addr
	}
	addr := m.heapNext
	m.heapNext += rounded
	m.Map(addr, rounded)
	m.allocSize[addr] = rounded
	return addr
}

// Free returns a block to the allocator. Freeing an address that was not
// returned by Alloc (e.g. a fault-corrupted pointer) is a no-op: real
// allocators often tolerate this silently, and the corruption will surface
// through data effects instead.
func (m *Memory) Free(addr uint64) {
	size, ok := m.allocSize[addr]
	if !ok {
		return
	}
	delete(m.allocSize, addr)
	m.freeList[size] = append(m.freeList[size], addr)
}

// HeapBytesAllocated reports the current bump-pointer extent of the heap.
func (m *Memory) HeapBytesAllocated() uint64 { return m.heapNext - HeapBase }

// PageCount reports the number of mapped pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// MappedRanges returns the mapped address ranges in ascending order,
// coalescing adjacent pages. Useful for debugging and tests.
func (m *Memory) MappedRanges() [][2]uint64 {
	if len(m.pages) == 0 {
		return nil
	}
	nums := make([]uint64, 0, len(m.pages))
	for p := range m.pages {
		nums = append(nums, p)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	var out [][2]uint64
	start, prev := nums[0], nums[0]
	for _, p := range nums[1:] {
		if p == prev+1 {
			prev = p
			continue
		}
		out = append(out, [2]uint64{start * PageSize, (prev + 1) * PageSize})
		start, prev = p, p
	}
	out = append(out, [2]uint64{start * PageSize, (prev + 1) * PageSize})
	return out
}

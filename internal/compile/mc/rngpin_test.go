package mc_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/compile/mc"
	"hlfi/internal/fault"
	"hlfi/internal/machine"
	"hlfi/internal/pinfi"
)

// countingSource counts Int63 draws so tests can pin the engines' RNG
// consumption, not just the final RNG state.
type countingSource struct {
	src   rand.Source
	draws int
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }
func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// TestRNGStreamPin pins the pre-decoded engine's RNG contract at the
// machine level: zero draws when the trigger is never reached, and
// exactly the simulator's draw count when the fault fires.
func TestRNGStreamPin(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := mc.Compile(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base)
	if err != nil {
		t.Fatal(err)
	}
	candSet := pinfi.Candidates(p.Asm, fault.CatAll)

	neverSrc := &countingSource{src: rand.NewSource(1)}
	e := mc.New(cp, &bytes.Buffer{})
	e.MaxInstrs = p.AsmInstrs * 2
	e.Inject = &machine.Injection{Candidates: candSet, TriggerIndex: 1 << 60, Rng: rand.New(neverSrc)}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Inject.Happened {
		t.Fatal("sentinel trigger unexpectedly fired")
	}
	if neverSrc.draws != 0 {
		t.Fatalf("non-firing compiled attempt drew from the RNG %d times, want 0", neverSrc.draws)
	}

	for _, trigger := range []uint64{0, 7, 33} {
		// Run errors are legitimate outcomes here: the flipped bit may
		// crash the workload. Error equivalence is pinned elsewhere
		// (TestInjectionEquivalence); this test only counts draws.
		sSrc := &countingSource{src: rand.NewSource(42)}
		sm := machine.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, &bytes.Buffer{})
		sm.MaxInstrs = p.AsmInstrs * 2
		sm.Inject = &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(sSrc)}
		_, _ = sm.Run()

		cSrc := &countingSource{src: rand.NewSource(42)}
		ce := mc.New(cp, &bytes.Buffer{})
		ce.MaxInstrs = p.AsmInstrs * 2
		ce.Inject = &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(cSrc)}
		_, _ = ce.Run()

		if !sm.Inject.Happened || !ce.Inject.Happened {
			t.Fatalf("trigger %d: injection did not fire (machine=%v compiled=%v)",
				trigger, sm.Inject.Happened, ce.Inject.Happened)
		}
		if sSrc.draws != cSrc.draws {
			t.Errorf("trigger %d: RNG draws diverged: machine=%d compiled=%d",
				trigger, sSrc.draws, cSrc.draws)
		}
	}
}

// Package mc pre-decodes lowered x86-like programs into dense dispatch
// tables of pre-bound Go closures — the machine-level analogue of
// internal/compile/irc. Operand decode (register numbers, effective
// address shapes, immediate canonicalization), ALU selection, builtin
// argument marshalling, and the activation predicates are all resolved
// once at compile time; the per-instruction hot path is a closure call
// plus the injection bookkeeping.
//
// The engine is byte-identical to machine.Machine: same outcomes, same
// error values and strings, same RNG consumption, same executed counts.
// Golden runs, profiling, snapshot capture, and traced attempts stay on
// the simulator; the compiled engine exists only for untraced injection
// attempts.
package mc

import (
	"fmt"

	"hlfi/internal/machine"
	"hlfi/internal/mem"
	"hlfi/internal/x86"
)

// step is one pre-decoded instruction.
type step struct {
	// exec performs the instruction and advances e.rip. done=true means
	// main returned to the halt address.
	exec func(e *Engine) (bool, error)
	// fire performs the injection bit flip for this instruction shape;
	// nil when the shape is not corruptible (mirrors fireInjection's
	// silent no-op arms).
	fire func(e *Engine, inj *machine.Injection, idx int)

	// Activation masks, pre-computed from the simulator's predicates.
	readsRegs  uint32
	writesRegs uint32
	readsXmms  uint32
	writesXmms uint32
	condMask   uint64
	condOrSet  bool
	flagSetter bool
}

// Program is a pre-decoded program, immutable and shareable across any
// number of concurrent Engines.
type Program struct {
	prog        *x86.Program
	steps       []step
	layoutImage []byte
	layoutBase  uint64
	haltAddr    uint64
}

// Asm returns the underlying lowered program.
func (p *Program) Asm() *x86.Program { return p.prog }

// Compile pre-decodes a lowered program. It fails (rather than degrade)
// on any opcode outside the simulator's dispatch; callers fall back to
// the simulator.
func Compile(p *x86.Program, layoutImage []byte, layoutBase uint64) (*Program, error) {
	cp := &Program{
		prog:        p,
		steps:       make([]step, len(p.Instrs)),
		layoutImage: layoutImage,
		layoutBase:  layoutBase,
		haltAddr:    mem.CodeBase + uint64(len(p.Instrs))*mem.CodeStride,
	}
	depFlags := machine.DependentFlagMasks(p)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		exec, err := compileExec(cp, i, in)
		if err != nil {
			return nil, fmt.Errorf("mc: instr %d: %w", i, err)
		}
		st := &cp.steps[i]
		st.exec = exec
		st.fire = compileFire(in, depFlags[i])
		for r := x86.Reg(1); r < x86.NumRegs; r++ {
			if machine.InstrReadsReg(in, r) {
				st.readsRegs |= 1 << uint(r)
			}
			if machine.InstrWritesReg(in, r) {
				st.writesRegs |= 1 << uint(r)
			}
		}
		for x := x86.XReg(1); x < x86.NumXRegs; x++ {
			if machine.InstrReadsXmm(in, x) {
				st.readsXmms |= 1 << uint(x)
			}
			if machine.InstrWritesXmm(in, x) {
				st.writesXmms |= 1 << uint(x)
			}
		}
		st.condMask = machine.CondFlagMask(in.Op)
		st.condOrSet = in.Op.IsCondJump() || in.Op.IsSet()
		st.flagSetter = in.Op.IsFlagSetter()
	}
	return cp, nil
}

// compileFire pre-binds the injection flip for one instruction shape,
// mirroring Machine.fireInjection arm for arm (including the silent
// no-op when a flag setter has no dependent jump).
func compileFire(in *x86.Instr, depMask uint64) func(e *Engine, inj *machine.Injection, idx int) {
	switch {
	case in.Op.IsFlagSetter():
		if depMask == 0 {
			return nil // not a candidate shape; selector should prevent this
		}
		bits := machine.FlagMaskBits(depMask)
		return func(e *Engine, inj *machine.Injection, idx int) {
			bit := bits[inj.Rng.Intn(len(bits))]
			inj.OrigVal = e.flags
			e.flags ^= 1 << uint(bit)
			inj.FaultyVal = e.flags
			inj.Bit = bit
			inj.TargetDesc = "rflags"
			e.watch = watchFlags
			e.watchMask = 1 << uint(bit)
			inj.Happened = true
			inj.InstrIdx = idx
		}

	case in.Dst.Kind == x86.OpXmm:
		xr := in.Dst.Xmm
		desc := xr.String()
		return func(e *Engine, inj *machine.Injection, idx int) {
			bit := inj.Rng.Intn(64)
			inj.OrigVal = e.xmm[xr][0]
			e.xmm[xr][0] ^= 1 << uint(bit)
			inj.FaultyVal = e.xmm[xr][0]
			inj.Bit = bit
			inj.TargetDesc = desc
			e.watch = watchXmm
			e.watchXmm = xr
			inj.Happened = true
			inj.InstrIdx = idx
		}

	case in.Dst.Kind == x86.OpReg:
		reg := in.Dst.Reg
		desc := reg.String()
		width := machine.InjectWidthOf(in)
		return func(e *Engine, inj *machine.Injection, idx int) {
			bit := inj.Rng.Intn(width)
			inj.OrigVal = e.regs[reg]
			e.regs[reg] ^= 1 << uint(bit)
			inj.FaultyVal = e.regs[reg]
			inj.Bit = bit
			inj.TargetDesc = desc
			e.watch = watchReg
			e.watchReg = reg
			inj.Happened = true
			inj.InstrIdx = idx
		}

	default:
		return nil
	}
}

// reader resolves one pre-decoded source operand.
type reader func(e *Engine) (uint64, error)

// effAddrFn computes a pre-decoded effective address.
type effAddrFn func(e *Engine) uint64

func compileEffAddr(o x86.Operand) effAddrFn {
	disp := uint64(o.Disp)
	base, index := o.Base, o.Index
	scale := uint64(o.Scale)
	switch {
	case base != x86.RegNone && index != x86.RegNone:
		return func(e *Engine) uint64 { return disp + e.regs[base] + e.regs[index]*scale }
	case base != x86.RegNone:
		return func(e *Engine) uint64 { return disp + e.regs[base] }
	case index != x86.RegNone:
		return func(e *Engine) uint64 { return disp + e.regs[index]*scale }
	default:
		return func(e *Engine) uint64 { return disp }
	}
}

// compileRead pre-binds readOp for one operand at one width.
func compileRead(o x86.Operand, size uint64) (reader, error) {
	switch o.Kind {
	case x86.OpReg:
		reg := o.Reg
		if size >= 8 {
			return func(e *Engine) (uint64, error) { return e.regs[reg], nil }, nil
		}
		mask := uint64(1)<<(8*size) - 1
		return func(e *Engine) (uint64, error) { return e.regs[reg] & mask, nil }, nil
	case x86.OpImm:
		v := machine.CanonicalVal(uint64(o.Imm), size)
		return func(e *Engine) (uint64, error) { return v, nil }, nil
	case x86.OpMem:
		ea := compileEffAddr(o)
		return func(e *Engine) (uint64, error) { return e.mem.Read(ea(e), size) }, nil
	case x86.OpXmm:
		xr := o.Xmm
		return func(e *Engine) (uint64, error) { return e.xmm[xr][0], nil }, nil
	default:
		return nil, fmt.Errorf("bad source operand kind %d", o.Kind)
	}
}

// writer stores one pre-decoded integer destination.
type writer func(e *Engine, v uint64) error

// compileWrite pre-binds writeIntDst for one operand at one width.
func compileWrite(o x86.Operand, size uint64) (writer, error) {
	switch o.Kind {
	case x86.OpReg:
		reg := o.Reg
		if size >= 8 {
			return func(e *Engine, v uint64) error { e.regs[reg] = v; return nil }, nil
		}
		mask := uint64(1)<<(8*size) - 1
		return func(e *Engine, v uint64) error { e.regs[reg] = v & mask; return nil }, nil
	case x86.OpMem:
		ea := compileEffAddr(o)
		return func(e *Engine, v uint64) error { return e.mem.Write(ea(e), size, v) }, nil
	default:
		return nil, fmt.Errorf("bad int destination kind %d", o.Kind)
	}
}

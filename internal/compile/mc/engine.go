package mc

import (
	"io"

	"hlfi/internal/machine"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

type watchKind int

const (
	watchNone watchKind = iota
	watchReg
	watchXmm
	watchFlags
)

// Engine executes one run of a pre-decoded program. It mirrors
// machine.Machine byte for byte, minus the instrumentation attempts
// never use (tracing, profiling sinks, snapshot capture), which is not
// compiled in.
type Engine struct {
	cp  *Program
	mem *mem.Memory
	env *rt.Env

	regs  [x86.NumRegs]uint64
	xmm   [x86.NumXRegs][2]uint64
	flags uint64
	rip   int

	// MaxInstrs bounds dynamic instructions; exceeded => machine.ErrHang.
	MaxInstrs uint64
	// Inject, when non-nil, arms a single fault injection.
	Inject *machine.Injection

	executed  uint64
	candCount uint64

	watch     watchKind
	watchReg  x86.Reg
	watchXmm  x86.XReg
	watchMask uint64
}

// New creates an engine with fresh memory, the globals image installed,
// and the constant pool mapped, mirroring machine.New.
func New(cp *Program, out io.Writer) *Engine {
	m := mem.New()
	if len(cp.layoutImage) > 0 {
		m.Map(cp.layoutBase, uint64(len(cp.layoutImage)))
		if err := m.WriteBytes(cp.layoutBase, cp.layoutImage); err != nil {
			panic("mc: install globals: " + err.Error())
		}
	} else {
		m.Map(cp.layoutBase, mem.PageSize)
	}
	if len(cp.prog.Rodata) > 0 {
		m.Map(x86.RodataBase, uint64(len(cp.prog.Rodata)))
		if err := m.WriteBytes(x86.RodataBase, cp.prog.Rodata); err != nil {
			panic("mc: install rodata: " + err.Error())
		}
	}
	return &Engine{
		cp:        cp,
		mem:       m,
		env:       &rt.Env{Mem: m, Out: out},
		MaxInstrs: machine.DefaultMaxInstrs,
	}
}

// NewFromSnapshot creates an engine resuming from a golden-run snapshot
// taken by the simulator, mirroring machine.NewFromSnapshot.
func NewFromSnapshot(cp *Program, s *machine.Snapshot, out io.Writer) *Engine {
	m, regs, xmm, flags, rip := s.CloneState()
	return &Engine{
		cp:        cp,
		mem:       m,
		env:       &rt.Env{Mem: m, Out: out},
		regs:      regs,
		xmm:       xmm,
		flags:     flags,
		rip:       rip,
		MaxInstrs: machine.DefaultMaxInstrs,
		executed:  s.Executed,
	}
}

// SetCandCount pre-loads the dynamic candidate count covered by the
// portion of the run the snapshot skipped.
func (e *Engine) SetCandCount(n uint64) { e.candCount = n }

// Executed reports retired dynamic instructions.
func (e *Engine) Executed() uint64 { return e.executed }

// Run executes the program from its entry point until main returns.
func (e *Engine) Run() (int64, error) {
	e.regs[x86.RSP] = mem.StackTop
	if err := e.push(e.cp.haltAddr); err != nil {
		return 0, err
	}
	e.rip = e.cp.prog.Entry
	return e.loop()
}

// Resume continues a snapshot-restored engine.
func (e *Engine) Resume() (int64, error) { return e.loop() }

func (e *Engine) loop() (int64, error) {
	steps := e.cp.steps
	for {
		rip := e.rip
		if rip < 0 || rip >= len(steps) {
			return 0, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: mem.CodeBase + uint64(rip)*mem.CodeStride}
		}
		if e.executed >= e.MaxInstrs {
			return 0, machine.ErrHang
		}
		st := &steps[rip]
		e.executed++
		if e.watch != watchNone {
			e.checkActivation(st)
		}
		done, err := st.exec(e)
		if err != nil {
			return 0, err
		}
		if done {
			return int64(int32(e.regs[x86.RAX])), nil
		}
		if inj := e.Inject; inj != nil && !inj.Happened && inj.Candidates[rip] {
			if inj.TriggerIndex == e.candCount {
				if st.fire != nil {
					st.fire(e, inj, rip)
				}
			}
			e.candCount++
		}
	}
}

// checkActivation is the mask-based form of Machine.checkActivation: a
// read of the corrupted location activates the fault; an overwrite
// without a read kills it.
func (e *Engine) checkActivation(st *step) {
	switch e.watch {
	case watchReg:
		if st.readsRegs&(1<<uint(e.watchReg)) != 0 {
			e.Inject.Activated = true
			e.watch = watchNone
		} else if st.writesRegs&(1<<uint(e.watchReg)) != 0 {
			e.watch = watchNone
		}
	case watchXmm:
		if st.readsXmms&(1<<uint(e.watchXmm)) != 0 {
			e.Inject.Activated = true
			e.watch = watchNone
		} else if st.writesXmms&(1<<uint(e.watchXmm)) != 0 {
			e.watch = watchNone
		}
	case watchFlags:
		if st.condOrSet {
			if st.condMask&e.watchMask != 0 {
				e.Inject.Activated = true
				e.watch = watchNone
			}
			return
		}
		if st.flagSetter {
			e.watch = watchNone
		}
	}
}

func (e *Engine) push(v uint64) error {
	e.regs[x86.RSP] -= 8
	return e.mem.Write(e.regs[x86.RSP], 8, v)
}

func (e *Engine) pop() (uint64, error) {
	v, err := e.mem.Read(e.regs[x86.RSP], 8)
	if err != nil {
		return 0, err
	}
	e.regs[x86.RSP] += 8
	return v, nil
}

package mc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/compile/mc"
	"hlfi/internal/fault"
	"hlfi/internal/machine"
	"hlfi/internal/pinfi"
)

// TestGoldenEquivalence runs every benchmark fault-free under the
// simulator and the pre-decoded engine and requires bit-identical exit
// codes, output, and executed counts.
func TestGoldenEquivalence(t *testing.T) {
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		cp, err := mc.Compile(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		var sOut, cOut bytes.Buffer
		sm := machine.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, &sOut)
		sRC, sErr := sm.Run()
		ce := mc.New(cp, &cOut)
		cRC, cErr := ce.Run()
		if fmt.Sprint(sErr) != fmt.Sprint(cErr) {
			t.Fatalf("%s: err: machine=%v compiled=%v", p.Name, sErr, cErr)
		}
		if sRC != cRC {
			t.Fatalf("%s: exit: machine=%d compiled=%d", p.Name, sRC, cRC)
		}
		if !bytes.Equal(sOut.Bytes(), cOut.Bytes()) {
			t.Fatalf("%s: output differs", p.Name)
		}
		if sm.Executed() != ce.Executed() {
			t.Fatalf("%s: executed: machine=%d compiled=%d", p.Name, sm.Executed(), ce.Executed())
		}
	}
}

// TestInjectionEquivalence replays the same injections (same candidate
// sets, trigger indices, and RNG seeds) through both engines and
// requires identical results and identical post-run RNG states.
func TestInjectionEquivalence(t *testing.T) {
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		cp, err := mc.Compile(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		for _, cat := range []fault.Category{fault.CatAll, fault.CatArith, fault.CatCmp, fault.CatLoad} {
			candSet := pinfi.Candidates(p.Asm, cat)
			any := false
			for _, c := range candSet {
				if c {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			for trial := 0; trial < 40; trial++ {
				seed := int64(trial + 1)
				trigger := uint64(trial * 53 % 300)

				sInj := &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				var sOut bytes.Buffer
				sm := machine.New(p.Asm, p.Prep.Layout.Image, p.Prep.Layout.Base, &sOut)
				sm.Inject = sInj
				sm.MaxInstrs = p.AsmInstrs*4 + 100_000
				sRC, sErr := sm.Run()

				cInj := &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				var cOut bytes.Buffer
				ce := mc.New(cp, &cOut)
				ce.Inject = cInj
				ce.MaxInstrs = p.AsmInstrs*4 + 100_000
				cRC, cErr := ce.Run()

				if fmt.Sprint(sErr) != fmt.Sprint(cErr) {
					t.Fatalf("%s/%v trial %d: err: machine=%v compiled=%v", p.Name, cat, trial, sErr, cErr)
				}
				if sRC != cRC || !bytes.Equal(sOut.Bytes(), cOut.Bytes()) {
					t.Fatalf("%s/%v trial %d: result divergence", p.Name, cat, trial)
				}
				if sm.Executed() != ce.Executed() {
					t.Fatalf("%s/%v trial %d: executed: machine=%d compiled=%d", p.Name, cat, trial, sm.Executed(), ce.Executed())
				}
				if sInj.Happened != cInj.Happened || sInj.Activated != cInj.Activated ||
					sInj.Bit != cInj.Bit || sInj.OrigVal != cInj.OrigVal ||
					sInj.FaultyVal != cInj.FaultyVal || sInj.InstrIdx != cInj.InstrIdx ||
					sInj.TargetDesc != cInj.TargetDesc {
					t.Fatalf("%s/%v trial %d: injection record divergence:\nmachine:  %+v\ncompiled: %+v",
						p.Name, cat, trial, sInj, cInj)
				}
				if a, b := sInj.Rng.Int63(), cInj.Rng.Int63(); a != b {
					t.Fatalf("%s/%v trial %d: RNG state diverged", p.Name, cat, trial)
				}
			}
		}
	}
}

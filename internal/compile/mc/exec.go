package mc

import (
	"fmt"
	"math"

	"hlfi/internal/machine"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
	"hlfi/internal/x86"
)

// sxFn pre-binds signExtend at a fixed width.
func sxFn(size uint64) func(uint64) int64 {
	shift := uint(64 - 8*size)
	return func(v uint64) int64 { return int64(v<<shift) >> shift }
}

// compileExec pre-binds the simulator's dispatch arm for one
// instruction. The closure performs exactly what Machine.exec does for
// this instruction — same evaluation order, same faults — and advances
// e.rip itself.
func compileExec(cp *Program, idx int, in *x86.Instr) (func(e *Engine) (bool, error), error) {
	size := in.OpSize()
	next := idx + 1
	switch in.Op {
	case x86.MOV:
		rd, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		wr, err := compileWrite(in.Dst, size)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			if err := wr(e, v); err != nil {
				return false, err
			}
			e.rip = next
			return false, nil
		}, nil

	case x86.MOVZX:
		rd, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		reg := in.Dst.Reg
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			e.regs[reg] = v // already zero-extended
			e.rip = next
			return false, nil
		}, nil

	case x86.MOVSX:
		rd, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		reg := in.Dst.Reg
		sx := sxFn(size)
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			e.regs[reg] = uint64(sx(v))
			e.rip = next
			return false, nil
		}, nil

	case x86.LEA:
		ea := compileEffAddr(in.Src)
		reg := in.Dst.Reg
		return func(e *Engine) (bool, error) {
			e.regs[reg] = ea(e)
			e.rip = next
			return false, nil
		}, nil

	case x86.ADD, x86.SUB, x86.IMUL, x86.AND, x86.OR, x86.XOR,
		x86.SHL, x86.SHR, x86.SAR:
		ra, err := compileRead(in.Dst, size)
		if err != nil {
			return nil, err
		}
		rb, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		wr, err := compileWrite(in.Dst, size)
		if err != nil {
			return nil, err
		}
		alu := compileAlu(in.Op, size)
		return func(e *Engine) (bool, error) {
			a, err := ra(e)
			if err != nil {
				return false, err
			}
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			if err := wr(e, alu(a, b)); err != nil {
				return false, err
			}
			e.rip = next
			return false, nil
		}, nil

	case x86.NEG:
		ra, err := compileRead(in.Dst, size)
		if err != nil {
			return nil, err
		}
		wr, err := compileWrite(in.Dst, size)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			a, err := ra(e)
			if err != nil {
				return false, err
			}
			if err := wr(e, -a); err != nil {
				return false, err
			}
			e.rip = next
			return false, nil
		}, nil

	case x86.CQO:
		return func(e *Engine) (bool, error) {
			e.regs[x86.RDX] = uint64(int64(e.regs[x86.RAX]) >> 63)
			e.rip = next
			return false, nil
		}, nil

	case x86.IDIV:
		rb, err := compileRead(in.Src, 8)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			den := int64(b)
			num := int64(e.regs[x86.RAX])
			if e.regs[x86.RDX] != uint64(num>>63) {
				return false, &mem.Fault{Kind: mem.FaultDivideByZero}
			}
			if den == 0 || (num == math.MinInt64 && den == -1) {
				return false, &mem.Fault{Kind: mem.FaultDivideByZero}
			}
			e.regs[x86.RAX] = uint64(num / den)
			e.regs[x86.RDX] = uint64(num % den)
			e.rip = next
			return false, nil
		}, nil

	case x86.CMP:
		ra, err := compileRead(in.Dst, size)
		if err != nil {
			return nil, err
		}
		rb, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			a, err := ra(e)
			if err != nil {
				return false, err
			}
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			e.flags = machine.SubFlagsFor(a, b, size)
			e.rip = next
			return false, nil
		}, nil

	case x86.TEST:
		ra, err := compileRead(in.Dst, size)
		if err != nil {
			return nil, err
		}
		rb, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			a, err := ra(e)
			if err != nil {
				return false, err
			}
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			e.flags = machine.LogicFlagsFor(a&b, size)
			e.rip = next
			return false, nil
		}, nil

	case x86.SETE, x86.SETNE, x86.SETL, x86.SETLE, x86.SETG, x86.SETGE,
		x86.SETB, x86.SETBE, x86.SETA, x86.SETAE:
		op := in.Op
		reg := in.Dst.Reg
		return func(e *Engine) (bool, error) {
			var v uint64
			if machine.CondHolds(op, e.flags) {
				v = 1
			}
			e.regs[reg] = v
			e.rip = next
			return false, nil
		}, nil

	case x86.JMP:
		label := in.Dst.Label
		return func(e *Engine) (bool, error) {
			e.rip = label
			return false, nil
		}, nil

	case x86.JE, x86.JNE, x86.JL, x86.JLE, x86.JG, x86.JGE,
		x86.JB, x86.JBE, x86.JA, x86.JAE:
		op := in.Op
		label := in.Dst.Label
		return func(e *Engine) (bool, error) {
			if machine.CondHolds(op, e.flags) {
				e.rip = label
			} else {
				e.rip = next
			}
			return false, nil
		}, nil

	case x86.PUSH:
		rd, err := compileRead(in.Dst, 8)
		if err != nil {
			return nil, err
		}
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			if err := e.push(v); err != nil {
				return false, err
			}
			e.rip = next
			return false, nil
		}, nil

	case x86.POP:
		reg := in.Dst.Reg
		return func(e *Engine) (bool, error) {
			v, err := e.pop()
			if err != nil {
				return false, err
			}
			e.regs[reg] = v
			e.rip = next
			return false, nil
		}, nil

	case x86.CALL:
		if in.Builtin != "" {
			return compileBuiltinCall(in, next)
		}
		retAddr := mem.CodeBase + uint64(next)*mem.CodeStride
		label := in.Dst.Label
		return func(e *Engine) (bool, error) {
			if err := e.push(retAddr); err != nil {
				return false, err
			}
			e.rip = label
			return false, nil
		}, nil

	case x86.RET:
		nInstrs := len(cp.prog.Instrs)
		return func(e *Engine) (bool, error) {
			addr, err := e.pop()
			if err != nil {
				return false, err
			}
			if addr == e.cp.haltAddr {
				e.rip = nInstrs
				return true, nil
			}
			if addr < mem.CodeBase || (addr-mem.CodeBase)%mem.CodeStride != 0 {
				return false, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: addr}
			}
			target := int((addr - mem.CodeBase) / mem.CodeStride)
			if target >= nInstrs {
				return false, &mem.Fault{Kind: mem.FaultBadCodeAddr, Addr: addr}
			}
			e.rip = target
			return false, nil
		}, nil

	case x86.MOVSD:
		if in.Dst.Kind == x86.OpXmm {
			rd, err := compileRead(in.Src, 8)
			if err != nil {
				return nil, err
			}
			xr := in.Dst.Xmm
			return func(e *Engine) (bool, error) {
				v, err := rd(e)
				if err != nil {
					return false, err
				}
				e.xmm[xr][0] = v
				e.rip = next
				return false, nil
			}, nil
		}
		ea := compileEffAddr(in.Dst)
		src := in.Src.Xmm
		return func(e *Engine) (bool, error) {
			if err := e.mem.Write(ea(e), 8, e.xmm[src][0]); err != nil {
				return false, err
			}
			e.rip = next
			return false, nil
		}, nil

	case x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD:
		rb, err := compileRead(in.Src, 8)
		if err != nil {
			return nil, err
		}
		xr := in.Dst.Xmm
		var fop func(x, y float64) float64
		switch in.Op {
		case x86.ADDSD:
			fop = func(x, y float64) float64 { return x + y }
		case x86.SUBSD:
			fop = func(x, y float64) float64 { return x - y }
		case x86.MULSD:
			fop = func(x, y float64) float64 { return x * y }
		case x86.DIVSD:
			fop = func(x, y float64) float64 { return x / y }
		}
		return func(e *Engine) (bool, error) {
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			x := math.Float64frombits(e.xmm[xr][0])
			y := math.Float64frombits(b)
			e.xmm[xr][0] = math.Float64bits(fop(x, y))
			e.rip = next
			return false, nil
		}, nil

	case x86.XORPD:
		dst, src := in.Dst.Xmm, in.Src.Xmm
		if dst == src {
			return func(e *Engine) (bool, error) {
				e.xmm[dst] = [2]uint64{}
				e.rip = next
				return false, nil
			}, nil
		}
		return func(e *Engine) (bool, error) {
			e.xmm[dst][0] ^= e.xmm[src][0]
			e.xmm[dst][1] ^= e.xmm[src][1]
			e.rip = next
			return false, nil
		}, nil

	case x86.UCOMISD:
		rb, err := compileRead(in.Src, 8)
		if err != nil {
			return nil, err
		}
		xr := in.Dst.Xmm
		return func(e *Engine) (bool, error) {
			b, err := rb(e)
			if err != nil {
				return false, err
			}
			x := math.Float64frombits(e.xmm[xr][0])
			y := math.Float64frombits(b)
			e.flags = machine.UcomisdFlagsFor(x, y)
			e.rip = next
			return false, nil
		}, nil

	case x86.CVTSI2SD:
		rd, err := compileRead(in.Src, size)
		if err != nil {
			return nil, err
		}
		xr := in.Dst.Xmm
		sx := sxFn(size)
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			e.xmm[xr][0] = math.Float64bits(float64(sx(v)))
			e.rip = next
			return false, nil
		}, nil

	case x86.CVTTSD2SI:
		rd, err := compileRead(in.Src, 8)
		if err != nil {
			return nil, err
		}
		reg := in.Dst.Reg
		return func(e *Engine) (bool, error) {
			v, err := rd(e)
			if err != nil {
				return false, err
			}
			f := math.Float64frombits(v)
			var iv int64
			if !math.IsNaN(f) {
				iv = int64(f)
			}
			e.regs[reg] = machine.CanonicalVal(uint64(iv), size)
			e.rip = next
			return false, nil
		}, nil

	default:
		return nil, fmt.Errorf("opcode %s not compilable", in.Op)
	}
}

// compileAlu pre-binds one integer ALU op at a fixed width, mirroring
// aluOp.
func compileAlu(op x86.Opcode, size uint64) func(a, b uint64) uint64 {
	sx := sxFn(size)
	switch op {
	case x86.ADD:
		return func(a, b uint64) uint64 { return a + b }
	case x86.SUB:
		return func(a, b uint64) uint64 { return a - b }
	case x86.IMUL:
		return func(a, b uint64) uint64 { return uint64(sx(a) * sx(b)) }
	case x86.AND:
		return func(a, b uint64) uint64 { return a & b }
	case x86.OR:
		return func(a, b uint64) uint64 { return a | b }
	case x86.XOR:
		return func(a, b uint64) uint64 { return a ^ b }
	case x86.SHL:
		return func(a, b uint64) uint64 { return a << (b & 63) }
	case x86.SHR:
		return func(a, b uint64) uint64 { return a >> (b & 63) }
	case x86.SAR:
		return func(a, b uint64) uint64 { return uint64(sx(a) >> (b & 63)) }
	default:
		return func(a, b uint64) uint64 { return 0 }
	}
}

// compileBuiltinCall pre-binds a builtin call's SysV argument
// marshalling, mirroring callBuiltin.
func compileBuiltinCall(in *x86.Instr, next int) (func(e *Engine) (bool, error), error) {
	type argSrc struct {
		float bool
		reg   x86.Reg
		xreg  x86.XReg
	}
	srcs := make([]argSrc, len(in.ArgClasses))
	ii, fi := 0, 0
	for k := 0; k < len(in.ArgClasses); k++ {
		if in.ArgClasses[k] == 'd' {
			srcs[k] = argSrc{float: true, xreg: x86.FloatArgRegs[fi]}
			fi++
		} else {
			srcs[k] = argSrc{reg: x86.IntArgRegs[ii]}
			ii++
		}
	}
	name := in.Builtin
	retFloat := in.RetFloat
	return func(e *Engine) (bool, error) {
		args := make([]uint64, len(srcs))
		for k, s := range srcs {
			if s.float {
				args[k] = e.xmm[s.xreg][0]
			} else {
				args[k] = e.regs[s.reg]
			}
		}
		ret, err := rt.Call(e.env, name, args)
		if err != nil {
			return false, err
		}
		if retFloat {
			e.xmm[x86.XMM0][0] = ret
		} else {
			e.regs[x86.RAX] = ret
		}
		e.rip = next
		return false, nil
	}, nil
}

package irc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/compile/irc"
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
)

// TestGoldenEquivalence runs every benchmark fault-free under the
// interpreter and the compiled engine and requires bit-identical exit
// codes, output, and executed counts.
func TestGoldenEquivalence(t *testing.T) {
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		cp, err := irc.Compile(p.Prep)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		var iOut, cOut bytes.Buffer
		ir := interp.NewRunner(p.Prep, &iOut)
		iRC, iErr := ir.Run()
		cr := irc.NewRunner(cp, &cOut)
		cRC, cErr := cr.Run()
		if fmt.Sprint(iErr) != fmt.Sprint(cErr) {
			t.Fatalf("%s: err: interp=%v compiled=%v", p.Name, iErr, cErr)
		}
		if iRC != cRC {
			t.Fatalf("%s: exit: interp=%d compiled=%d", p.Name, iRC, cRC)
		}
		if !bytes.Equal(iOut.Bytes(), cOut.Bytes()) {
			t.Fatalf("%s: output differs", p.Name)
		}
		if ir.Executed() != cr.Executed() {
			t.Fatalf("%s: executed: interp=%d compiled=%d", p.Name, ir.Executed(), cr.Executed())
		}
	}
}

// TestInjectionEquivalence replays the same injections (same candidate
// sets, trigger indices, and RNG seeds) through both engines and
// requires identical results and identical post-run RNG states.
func TestInjectionEquivalence(t *testing.T) {
	progs, err := bench.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		cp, err := irc.Compile(p.Prep)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		for _, cat := range []fault.Category{fault.CatAll, fault.CatArith, fault.CatCmp, fault.CatLoad} {
			candSet := llfi.Candidates(p.Prep, cat)
			any := false
			for _, c := range candSet {
				if c {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			for trial := 0; trial < 40; trial++ {
				seed := int64(trial + 1)
				trigger := uint64(trial * 37 % 200)

				iInj := &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				var iOut bytes.Buffer
				ir := interp.NewRunner(p.Prep, &iOut)
				ir.Inject = iInj
				ir.MaxInstrs = p.IRInstrs*4 + 100_000
				iRC, iErr := ir.Run()

				cInj := &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				var cOut bytes.Buffer
				cr := irc.NewRunner(cp, &cOut)
				cr.Inject = cInj
				cr.MaxInstrs = p.IRInstrs*4 + 100_000
				cRC, cErr := cr.Run()

				if fmt.Sprint(iErr) != fmt.Sprint(cErr) {
					t.Fatalf("%s/%v trial %d: err: interp=%v compiled=%v", p.Name, cat, trial, iErr, cErr)
				}
				if iRC != cRC || !bytes.Equal(iOut.Bytes(), cOut.Bytes()) {
					t.Fatalf("%s/%v trial %d: result divergence", p.Name, cat, trial)
				}
				if ir.Executed() != cr.Executed() {
					t.Fatalf("%s/%v trial %d: executed: interp=%d compiled=%d", p.Name, cat, trial, ir.Executed(), cr.Executed())
				}
				if iInj.Happened != cInj.Happened || iInj.Activated != cInj.Activated ||
					iInj.Bit != cInj.Bit || iInj.OrigVal != cInj.OrigVal ||
					iInj.FaultyVal != cInj.FaultyVal || iInj.InstrIndex != cInj.InstrIndex ||
					iInj.Target != cInj.Target {
					t.Fatalf("%s/%v trial %d: injection record divergence:\ninterp:   %+v\ncompiled: %+v",
						p.Name, cat, trial, iInj, cInj)
				}
				// Post-run RNG states must match: both engines drew the
				// same values in the same order.
				if a, b := iInj.Rng.Int63(), cInj.Rng.Int63(); a != b {
					t.Fatalf("%s/%v trial %d: RNG state diverged", p.Name, cat, trial)
				}
			}
		}
	}
}

package irc_test

import (
	"bytes"
	"math/rand"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/compile/irc"
	"hlfi/internal/fault"
	"hlfi/internal/interp"
	"hlfi/internal/llfi"
)

// countingSource counts Int63 draws so tests can pin the engines' RNG
// consumption, not just the final RNG state.
type countingSource struct {
	src   rand.Source
	draws int
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }
func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// TestRNGStreamPin pins the compiled engine's RNG contract: an attempt
// whose trigger is never reached consumes zero draws, and a firing
// attempt consumes exactly as many draws as the interpreter does — the
// fire-point Intn is the only randomness in either engine, so campaign
// random streams cannot drift when the compiled engine substitutes in.
func TestRNGStreamPin(t *testing.T) {
	p, err := bench.Build("quantumm")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := irc.Compile(p.Prep)
	if err != nil {
		t.Fatal(err)
	}
	candSet := llfi.Candidates(p.Prep, fault.CatAll)

	// Trigger far beyond the dynamic candidate count: the injection
	// window never opens, so the compiled engine must not touch the RNG.
	neverSrc := &countingSource{src: rand.NewSource(1)}
	r := irc.NewRunner(cp, &bytes.Buffer{})
	r.MaxInstrs = p.IRInstrs * 2
	r.Inject = &interp.Injection{Candidates: candSet, TriggerIndex: 1 << 60, Rng: rand.New(neverSrc)}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Inject.Happened {
		t.Fatal("sentinel trigger unexpectedly fired")
	}
	if neverSrc.draws != 0 {
		t.Fatalf("non-firing compiled attempt drew from the RNG %d times, want 0", neverSrc.draws)
	}

	// A firing attempt: both engines must consume the identical number of
	// draws (and TestInjectionEquivalence already pins the values).
	for _, trigger := range []uint64{0, 7, 33} {
		// Run errors are legitimate outcomes here: the flipped bit may
		// crash the workload. Error equivalence is pinned elsewhere
		// (TestInjectionEquivalence); this test only counts draws.
		iSrc := &countingSource{src: rand.NewSource(42)}
		ir := interp.NewRunner(p.Prep, &bytes.Buffer{})
		ir.MaxInstrs = p.IRInstrs * 2
		ir.Inject = &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(iSrc)}
		_, _ = ir.Run()

		cSrc := &countingSource{src: rand.NewSource(42)}
		cr := irc.NewRunner(cp, &bytes.Buffer{})
		cr.MaxInstrs = p.IRInstrs * 2
		cr.Inject = &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(cSrc)}
		_, _ = cr.Run()

		if !ir.Inject.Happened || !cr.Inject.Happened {
			t.Fatalf("trigger %d: injection did not fire (interp=%v compiled=%v)",
				trigger, ir.Inject.Happened, cr.Inject.Happened)
		}
		if iSrc.draws != cSrc.draws {
			t.Errorf("trigger %d: RNG draws diverged: interp=%d compiled=%d",
				trigger, iSrc.draws, cSrc.draws)
		}
		if iSrc.draws == 0 {
			t.Errorf("trigger %d: firing attempt drew nothing (fire point not exercised)", trigger)
		}
	}
}

package irc

import (
	"fmt"
	"io"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
)

// frame is one activation record of the compiled engine. pc indexes
// blk.steps (phis are executed on edge entry, so pc 0 is the first
// non-phi instruction).
type frame struct {
	code    *fnCode
	blk     *blockCode
	pc      int
	vals    []uint64
	params  []uint64
	base    uint64
	savedSP uint64
}

// Runner executes one run of a compiled program. It mirrors
// interp.Runner byte for byte: same outcomes, same error strings, same
// RNG consumption, same executed counts — minus the instrumentation
// attempts never use (tracing, profiling sinks, snapshot capture),
// which is not compiled in.
type Runner struct {
	cp  *Program
	mem *mem.Memory
	out io.Writer
	env *rt.Env

	// MaxInstrs bounds dynamic instructions; exceeded => interp.ErrHang.
	MaxInstrs uint64
	// Inject, when non-nil, arms a single fault injection.
	Inject *interp.Injection

	executed  uint64
	candCount uint64
	sp        uint64
	stack     []*frame

	watchFrame *frame
	watchInstr *ir.Instr

	done   bool
	result int64
}

// NewRunner builds a runner with fresh memory, mirroring
// interp.NewRunner.
func NewRunner(cp *Program, out io.Writer) *Runner {
	m := mem.New()
	cp.prep.Layout.Install(m)
	r := &Runner{
		cp: cp, mem: m, out: out,
		MaxInstrs: interp.DefaultMaxInstrs,
		sp:        mem.StackTop,
	}
	r.env = &rt.Env{Mem: m, Out: out}
	return r
}

// NewRunnerFromSnapshot builds a runner resuming from a golden-run
// snapshot taken by the interpreter, mirroring
// interp.NewRunnerFromSnapshot.
func NewRunnerFromSnapshot(cp *Program, s *interp.Snapshot, out io.Writer) *Runner {
	m, sp, frames := s.CloneState()
	r := &Runner{
		cp: cp, mem: m, out: out,
		MaxInstrs: interp.DefaultMaxInstrs,
		executed:  s.Executed,
		sp:        sp,
	}
	r.env = &rt.Env{Mem: m, Out: out}
	r.stack = make([]*frame, len(frames))
	for i := range frames {
		fs := &frames[i]
		fc := cp.fns[fs.Fn]
		bc := fc.blocks[fs.Blk]
		r.stack[i] = &frame{
			code: fc, blk: bc, pc: fs.Idx - bc.nPhi,
			vals: fs.Vals, params: fs.Params,
			base: fs.Base, savedSP: fs.SavedSP,
		}
	}
	return r
}

// SetCandCount pre-loads the dynamic candidate count covered by the
// portion of the run the snapshot skipped, mirroring
// interp.Runner.SetCandCount.
func (r *Runner) SetCandCount(n uint64) { r.candCount = n }

// Executed reports the number of dynamic instructions retired.
func (r *Runner) Executed() uint64 { return r.executed }

// Run executes main to completion.
func (r *Runner) Run() (int64, error) {
	if r.cp.main == nil {
		return 0, interp.ErrNoMain
	}
	if err := r.pushFrame(r.cp.main, nil); err != nil {
		return 0, err
	}
	return r.loop()
}

// Resume continues a snapshot-restored runner.
func (r *Runner) Resume() (int64, error) { return r.loop() }

func (r *Runner) loop() (int64, error) {
	for {
		fr := r.stack[len(r.stack)-1]
		steps := fr.blk.steps
		if fr.pc >= len(steps) {
			return 0, fmt.Errorf("block %s fell through", fr.blk.blk.Name)
		}
		if r.executed >= r.MaxInstrs {
			return 0, interp.ErrHang
		}
		st := &steps[fr.pc]
		if r.watchInstr != nil && r.watchFrame == fr {
			for _, a := range st.watchArgs {
				if a == r.watchInstr {
					r.Inject.Activated = true
					r.watchInstr = nil
					break
				}
			}
		}
		if err := st.exec(r, fr); err != nil {
			return 0, err
		}
		if r.done {
			return r.result, nil
		}
	}
}

func (r *Runner) pushFrame(fc *fnCode, args []uint64) error {
	if r.sp < fc.frameSize || r.sp-fc.frameSize < mem.StackLimit {
		return &mem.Fault{Kind: mem.FaultStackOverflow, Addr: r.sp}
	}
	savedSP := r.sp
	r.sp -= fc.frameSize
	base := r.sp
	if fc.mapFrame {
		r.mem.Map(base, fc.frameSize)
	}
	fr := &frame{
		code: fc,
		vals: make([]uint64, fc.numValues), params: args,
		base: base, savedSP: savedSP,
	}
	r.stack = append(r.stack, fr)
	return r.enterEdge(fr, fc.entry)
}

// enterEdge positions a frame at the start of an edge's target block
// and executes the edge's phi bundle (incoming values read "in
// parallel", mirroring enterBlock).
func (r *Runner) enterEdge(fr *frame, e *edgePlan) error {
	fr.blk = e.to
	fr.pc = 0
	nPhi := len(e.phis)
	if nPhi == 0 {
		return nil
	}
	var tmp [8]uint64
	vals := tmp[:0]
	if nPhi > len(tmp) {
		vals = make([]uint64, 0, nPhi)
	}
	for i := 0; i < nPhi; i++ {
		ph := &e.phis[i]
		if r.watchInstr != nil && r.watchFrame == fr {
			for _, a := range ph.actArgs {
				if a == r.watchInstr {
					r.Inject.Activated = true
					r.watchInstr = nil
					break
				}
			}
		}
		if ph.err != nil {
			return ph.err
		}
		vals = append(vals, ph.load(fr))
	}
	for i := 0; i < nPhi; i++ {
		ph := &e.phis[i]
		fr.vals[ph.in.ID] = r.retire(fr, ph.in, ph.in.Seq, ph.width, ph.mask, vals[i])
	}
	return nil
}

// finishCall retires the OpCall the frame is parked on with the
// callee's (or builtin's) return value and advances past it.
func (r *Runner) finishCall(fr *frame, v uint64) error {
	f := fr.blk.steps[fr.pc].fin
	if f.hasResult {
		v &= f.mask
		fr.vals[f.id] = r.retire(fr, f.in, f.seq, f.width, f.mask, v)
	} else {
		r.count()
	}
	fr.pc++
	return nil
}

// count retires a void instruction. The compiled engine has no Profile
// sink — profiling runs stay on the interpreter — so this is just the
// dynamic-instruction counter.
func (r *Runner) count() {
	r.executed++
}

// retire retires a value-producing instruction, performing the armed
// injection when its trigger is reached.
func (r *Runner) retire(fr *frame, in *ir.Instr, seq, width int, mask, v uint64) uint64 {
	r.executed++
	if inj := r.Inject; inj != nil && !inj.Happened && inj.Candidates[seq] {
		if inj.TriggerIndex == r.candCount {
			bit := inj.Rng.Intn(width)
			nv := (v ^ (1 << uint(bit))) & mask
			inj.Happened = true
			inj.Target = in
			inj.Bit = bit
			inj.OrigVal = v
			inj.FaultyVal = nv
			inj.InstrIndex = r.executed
			r.watchFrame = fr
			r.watchInstr = in
			v = nv
		}
		r.candCount++
	}
	return v
}

package irc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hlfi/internal/codegen"
	"hlfi/internal/compile/irc"
	"hlfi/internal/compile/mc"
	"hlfi/internal/interp"
	"hlfi/internal/machine"
	"hlfi/internal/minic"
)

// fuzzBudget bounds fuzzed executions so pathological loops finish as
// ErrHang quickly instead of eating the fuzzing time box.
const fuzzBudget = 50_000

// FuzzCompiledVsInterp feeds arbitrary programs through both compiled
// engines and their interpreters — golden and with an injection armed —
// and requires bit-identical exit codes, errors, output, executed
// counts, injection records, and post-run RNG states. Programs the
// compilers reject are skipped: rejection IS the fallback path, and the
// interpreter result is then trivially identical.
func FuzzCompiledVsInterp(f *testing.F) {
	f.Add("int main(){int s=0;for(int i=0;i<50;i++)s+=i;print_long(s);return 0;}", int64(1), uint64(3))
	f.Add(`int arr[8];
int main() {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) { arr[i] = i * 3; acc = acc + (double)arr[i]; }
    long sum = 0;
    for (int i = 0; i < 8; i++) sum += arr[i];
    print_long(sum); print_str(" "); print_double(acc); print_str("\n");
    return 0;
}`, int64(7), uint64(19))
	f.Add("int f(int n){ if (n < 2) return n; return f(n-1)+f(n-2); } int main(){ print_long(f(12)); return 0; }", int64(3), uint64(40))
	f.Add("int main(){ int *p = 0; return *p; }", int64(5), uint64(0))
	f.Add("int main(){ int a = 7; int b = 0; return a / b; }", int64(9), uint64(1))
	f.Add("int main(){ for(;;){} return 0; }", int64(11), uint64(64))

	f.Fuzz(func(t *testing.T, src string, seed int64, trigger uint64) {
		mod, err := minic.Compile("fuzz", src)
		if err != nil {
			t.Skip()
		}
		prep, err := interp.Prepare(mod)
		if err != nil {
			t.Skip()
		}
		trigger %= 4096

		// IR level: interpreter vs compile-to-closure engine.
		if cp, err := irc.Compile(prep); err == nil {
			candSet := make([]bool, prep.SeqTotal)
			for i := range candSet {
				candSet[i] = true
			}
			for _, inject := range []bool{false, true} {
				var iOut, cOut bytes.Buffer
				ir := interp.NewRunner(prep, &iOut)
				ir.MaxInstrs = fuzzBudget
				cr := irc.NewRunner(cp, &cOut)
				cr.MaxInstrs = fuzzBudget
				var iInj, cInj *interp.Injection
				if inject {
					iInj = &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
					cInj = &interp.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
					ir.Inject, cr.Inject = iInj, cInj
				}
				iRC, iErr := ir.Run()
				cRC, cErr := cr.Run()
				if iRC != cRC || fmt.Sprint(iErr) != fmt.Sprint(cErr) ||
					!bytes.Equal(iOut.Bytes(), cOut.Bytes()) || ir.Executed() != cr.Executed() {
					t.Fatalf("IR divergence (inject=%v): interp=(%d,%v,%q,%d) compiled=(%d,%v,%q,%d)",
						inject, iRC, iErr, iOut.Bytes(), ir.Executed(), cRC, cErr, cOut.Bytes(), cr.Executed())
				}
				if inject {
					if iInj.Happened != cInj.Happened || iInj.Activated != cInj.Activated ||
						iInj.Bit != cInj.Bit || iInj.OrigVal != cInj.OrigVal ||
						iInj.FaultyVal != cInj.FaultyVal || iInj.InstrIndex != cInj.InstrIndex {
						t.Fatalf("IR injection record divergence:\ninterp   %+v\ncompiled %+v", iInj, cInj)
					}
					if a, b := iInj.Rng.Int63(), cInj.Rng.Int63(); a != b {
						t.Fatal("IR RNG state diverged")
					}
				}
			}
		}

		// Machine level: simulator vs pre-decoded engine.
		asm, err := codegen.Lower(mod, prep.Layout, codegen.DefaultOptions())
		if err != nil {
			t.Skip()
		}
		acp, err := mc.Compile(asm, prep.Layout.Image, prep.Layout.Base)
		if err != nil {
			return
		}
		candSet := make([]bool, len(asm.Instrs))
		for i := range candSet {
			candSet[i] = true
		}
		for _, inject := range []bool{false, true} {
			var sOut, cOut bytes.Buffer
			sm := machine.New(asm, prep.Layout.Image, prep.Layout.Base, &sOut)
			sm.MaxInstrs = fuzzBudget
			ce := mc.New(acp, &cOut)
			ce.MaxInstrs = fuzzBudget
			var sInj, cInj *machine.Injection
			if inject {
				sInj = &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				cInj = &machine.Injection{Candidates: candSet, TriggerIndex: trigger, Rng: rand.New(rand.NewSource(seed))}
				sm.Inject, ce.Inject = sInj, cInj
			}
			sRC, sErr := sm.Run()
			cRC, cErr := ce.Run()
			if sRC != cRC || fmt.Sprint(sErr) != fmt.Sprint(cErr) ||
				!bytes.Equal(sOut.Bytes(), cOut.Bytes()) || sm.Executed() != ce.Executed() {
				t.Fatalf("ASM divergence (inject=%v): machine=(%d,%v,%q,%d) compiled=(%d,%v,%q,%d)",
					inject, sRC, sErr, sOut.Bytes(), sm.Executed(), cRC, cErr, cOut.Bytes(), ce.Executed())
			}
			if inject {
				if sInj.Happened != cInj.Happened || sInj.Activated != cInj.Activated ||
					sInj.Bit != cInj.Bit || sInj.OrigVal != cInj.OrigVal ||
					sInj.FaultyVal != cInj.FaultyVal || sInj.InstrIdx != cInj.InstrIdx ||
					sInj.TargetDesc != cInj.TargetDesc {
					t.Fatalf("ASM injection record divergence:\nmachine  %+v\ncompiled %+v", sInj, cInj)
				}
				if a, b := sInj.Rng.Int63(), cInj.Rng.Int63(); a != b {
					t.Fatal("ASM RNG state diverged")
				}
			}
		}
	})
}

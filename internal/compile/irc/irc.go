// Package irc compiles prepared IR modules into flat per-block arrays
// of pre-bound Go closures — the one-time "compile" step that replaces
// the interpreter's per-instruction dispatch for injection attempts.
//
// Design choice (see docs/compiled.md): each basic block becomes a flat
// []step of closures driven by a per-frame pc, rather than a bytecode
// array. Go has no computed goto, so bytecode would still pay a dispatch
// switch per instruction; closures move all of that cost to compile
// time — operand resolution (no interface type switches), width
// canonicalization and sign extension (no per-op branching), GEP stride
// plans, and CFG edges with their phi bundles are all pre-bound. The
// engine is byte-identical to interp.Runner: same outcomes, same error
// strings, same RNG consumption, same executed counts. Instrumentation
// the interpreter supports but attempts never use (taint tracing,
// snapshot capture) is not compiled in at all — golden runs, profiling,
// and traced attempts stay on the interpreter.
//
// Any construct the compiler cannot lower (e.g. function-valued
// operands) fails Compile; callers fall back to the interpreter for the
// whole program, which is byte-identical by definition.
package irc

import (
	"fmt"
	"math"

	"hlfi/internal/interp"
	"hlfi/internal/ir"
	"hlfi/internal/mem"
	"hlfi/internal/rt"
)

// divideFault is the shared divide-error value. The interpreter
// allocates a fresh fault per occurrence; only the rendered string is
// observable, and it is identical.
var divideFault = &mem.Fault{Kind: mem.FaultDivideByZero}

// loader resolves one pre-bound operand against a frame.
type loader func(fr *frame) uint64

// step is one compiled non-phi instruction.
type step struct {
	exec func(r *Runner, fr *frame) error
	// watchArgs are the instruction-valued operands, in operand order,
	// for the activation scan (only instruction results can be watched).
	watchArgs []*ir.Instr
	// fin completes an OpCall step when its callee returns.
	fin *callFinish
}

type callFinish struct {
	in        *ir.Instr
	hasResult bool
	id        int
	seq       int
	width     int
	mask      uint64
}

// blockCode is one compiled basic block: the non-phi instructions as
// steps; phis live on the incoming edges.
type blockCode struct {
	blk   *ir.Block
	nPhi  int
	steps []step
}

// phiStep is one phi of an edge's bundle, with the incoming value
// loader for that edge pre-selected.
type phiStep struct {
	in *ir.Instr
	// actArgs are the instruction-valued incoming args on this edge, in
	// operand order (the per-edge activation scan).
	actArgs []*ir.Instr
	load    loader
	err     error // pre-built "no incoming edge" error, when applicable
	width   int
	mask    uint64
}

// edgePlan is one CFG edge: the target block plus its phi bundle for
// this predecessor.
type edgePlan struct {
	to   *blockCode
	phis []phiStep
}

// fnCode is one compiled function.
type fnCode struct {
	fn        *ir.Function
	frameSize uint64
	mapFrame  bool
	numValues int
	blocks    map[*ir.Block]*blockCode
	entry     *edgePlan
}

// Program is a compiled module, immutable and shareable across any
// number of concurrent Runners.
type Program struct {
	prep *interp.Prepared
	fns  map[*ir.Function]*fnCode
	main *fnCode
}

// Prepared returns the underlying prepared module.
func (p *Program) Prepared() *interp.Prepared { return p.prep }

type edgeKey struct{ from, to *ir.Block }

type compiler struct {
	prep  *interp.Prepared
	fns   map[*ir.Function]*fnCode
	edges map[edgeKey]*edgePlan
}

// Compile lowers a prepared module. It fails (rather than degrade) on
// any construct outside the interpreter's executable subset; callers
// are expected to fall back to the interpreter.
func Compile(p *interp.Prepared) (*Program, error) {
	c := &compiler{
		prep:  p,
		fns:   make(map[*ir.Function]*fnCode, len(p.Mod.Funcs)),
		edges: make(map[edgeKey]*edgePlan),
	}
	// Pass 1: allocate fnCode and blockCode shells so call and branch
	// compilation can reference targets in any order.
	for _, f := range p.Mod.Funcs {
		if len(f.Blocks) == 0 {
			continue // declarations are handled at the call site
		}
		fc := &fnCode{
			fn:        f,
			frameSize: p.FrameSize(f),
			mapFrame:  p.FrameSize(f) > interp.MinFrameBytes,
			numValues: f.NumValues(),
			blocks:    make(map[*ir.Block]*blockCode, len(f.Blocks)),
		}
		for _, b := range f.Blocks {
			nPhi := 0
			for nPhi < len(b.Instrs) && b.Instrs[nPhi].Op == ir.OpPhi {
				nPhi++
			}
			fc.blocks[b] = &blockCode{blk: b, nPhi: nPhi}
		}
		c.fns[f] = fc
	}
	// Pass 2: compile bodies.
	for _, f := range p.Mod.Funcs {
		fc := c.fns[f]
		if fc == nil {
			continue
		}
		for _, b := range f.Blocks {
			if err := c.compileBlock(fc, b); err != nil {
				return nil, fmt.Errorf("irc: @%s: %w", f.Name, err)
			}
		}
		entry, err := c.edge(nil, f.Entry(), fc)
		if err != nil {
			return nil, fmt.Errorf("irc: @%s: %w", f.Name, err)
		}
		fc.entry = entry
	}
	cp := &Program{prep: p, fns: c.fns}
	if m := p.Mod.Func("main"); m != nil {
		cp.main = c.fns[m] // nil when main has no blocks => ErrNoMain
	}
	return cp, nil
}

// loader compiles one operand. Function values (and any future operand
// kind) are not executable at the IR level; compilation fails and the
// caller falls back to the interpreter, which reports the same
// condition at runtime if the instruction is ever reached.
func (c *compiler) loader(v ir.Value) (loader, error) {
	switch x := v.(type) {
	case *ir.Instr:
		id := x.ID
		return func(fr *frame) uint64 { return fr.vals[id] }, nil
	case *ir.Const:
		val := x.Val
		return func(fr *frame) uint64 { return val }, nil
	case *ir.Param:
		idx := x.Index
		return func(fr *frame) uint64 { return fr.params[idx] }, nil
	case *ir.Global:
		addr := c.prep.Layout.Addr[x]
		return func(fr *frame) uint64 { return addr }, nil
	default:
		return nil, fmt.Errorf("operand %T not compilable", v)
	}
}

func (c *compiler) loaders(args []ir.Value) ([]loader, error) {
	out := make([]loader, len(args))
	for i, a := range args {
		ld, err := c.loader(a)
		if err != nil {
			return nil, err
		}
		out[i] = ld
	}
	return out, nil
}

// watchArgs collects the instruction-valued operands, in order.
func watchArgs(args []ir.Value) []*ir.Instr {
	var out []*ir.Instr
	for _, a := range args {
		if in, ok := a.(*ir.Instr); ok {
			out = append(out, in)
		}
	}
	return out
}

// canonMask is the bit mask equivalent of ir.Canonical for a type.
func canonMask(t *ir.Type) uint64 {
	if t.Kind == ir.KindInt && t.Bits < 64 {
		return 1<<uint(t.Bits) - 1
	}
	return ^uint64(0)
}

// sxShift is the shift pair equivalent of ir.SignExtend for a type:
// int64(v<<shift) >> shift.
func sxShift(t *ir.Type) uint {
	if t.Kind != ir.KindInt || t.Bits >= 64 {
		return 0
	}
	return uint(64 - t.Bits)
}

// valueBits mirrors the interpreter's injectable width of a type.
func valueBits(t *ir.Type) int {
	if t.Kind == ir.KindInt {
		return t.Bits
	}
	return 64
}

// edge builds (or reuses) the compiled plan for the CFG edge from ->
// to, including to's phi bundle for that predecessor. The entry edge
// uses from == nil.
func (c *compiler) edge(from, to *ir.Block, fc *fnCode) (*edgePlan, error) {
	k := edgeKey{from: from, to: to}
	if e, ok := c.edges[k]; ok {
		return e, nil
	}
	bc := fc.blocks[to]
	e := &edgePlan{to: bc}
	for i := 0; i < bc.nPhi; i++ {
		in := to.Instrs[i]
		ph := phiStep{in: in, width: valueBits(in.Ty), mask: canonMask(in.Ty)}
		matched := false
		for j, pb := range in.Blocks {
			if pb != from {
				continue
			}
			if !matched {
				ld, err := c.loader(in.Args[j])
				if err != nil {
					return nil, err
				}
				ph.load = ld
				matched = true
			}
			if a, ok := in.Args[j].(*ir.Instr); ok {
				ph.actArgs = append(ph.actArgs, a)
			}
		}
		if !matched {
			ph.err = fmt.Errorf("phi in %s: no incoming edge from %v", in.Parent.Name, from)
		}
		e.phis = append(e.phis, ph)
	}
	c.edges[k] = e
	return e, nil
}

func (c *compiler) compileBlock(fc *fnCode, b *ir.Block) error {
	bc := fc.blocks[b]
	bc.steps = make([]step, 0, len(b.Instrs)-bc.nPhi)
	for _, in := range b.Instrs[bc.nPhi:] {
		st, err := c.compileInstr(fc, b, in)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		st.watchArgs = watchArgs(in.Args)
		bc.steps = append(bc.steps, st)
	}
	return nil
}

func (c *compiler) compileInstr(fc *fnCode, b *ir.Block, in *ir.Instr) (step, error) {
	switch in.Op {
	case ir.OpBr:
		e, err := c.edge(b, in.Blocks[0], fc)
		if err != nil {
			return step{}, err
		}
		return step{exec: func(r *Runner, fr *frame) error {
			r.count()
			return r.enterEdge(fr, e)
		}}, nil

	case ir.OpCondBr:
		lc, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		eTrue, err := c.edge(b, in.Blocks[0], fc)
		if err != nil {
			return step{}, err
		}
		eFalse, err := c.edge(b, in.Blocks[1], fc)
		if err != nil {
			return step{}, err
		}
		return step{exec: func(r *Runner, fr *frame) error {
			cv := lc(fr)
			r.count()
			taken := eFalse
			if cv&1 != 0 {
				taken = eTrue
			}
			return r.enterEdge(fr, taken)
		}}, nil

	case ir.OpRet:
		retTy := fc.fn.Sig.Return
		var lv loader
		if len(in.Args) == 1 {
			var err error
			lv, err = c.loader(in.Args[0])
			if err != nil {
				return step{}, err
			}
		}
		return step{exec: func(r *Runner, fr *frame) error {
			r.count()
			var v uint64
			if lv != nil {
				v = lv(fr)
			}
			r.sp = fr.savedSP
			r.stack = r.stack[:len(r.stack)-1]
			if len(r.stack) == 0 {
				r.done = true
				r.result = ir.SignExtend(v, retTy)
				return nil
			}
			return r.finishCall(r.stack[len(r.stack)-1], v)
		}}, nil

	case ir.OpCall:
		return c.compileCall(in)

	case ir.OpICmp:
		la, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		lb, err := c.loader(in.Args[1])
		if err != nil {
			return step{}, err
		}
		cmp, err := icmpFn(in.Pred, sxShift(in.Args[0].Type()))
		if err != nil {
			return step{}, err
		}
		return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
			if cmp(la(fr), lb(fr)) {
				return 1, nil
			}
			return 0, nil
		})

	case ir.OpFCmp:
		la, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		lb, err := c.loader(in.Args[1])
		if err != nil {
			return step{}, err
		}
		cmp, err := fcmpFn(in.Pred)
		if err != nil {
			return step{}, err
		}
		return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
			if cmp(math.Float64frombits(la(fr)), math.Float64frombits(lb(fr))) {
				return 1, nil
			}
			return 0, nil
		})

	case ir.OpAlloca:
		off := c.prep.AllocaOffset(in)
		return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
			return fr.base + off, nil
		})

	case ir.OpGEP:
		return c.compileGEP(in)

	case ir.OpLoad:
		lp, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		size := in.Ty.Size()
		mask := canonMask(in.Ty)
		return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
			v, err := r.mem.Read(lp(fr), size)
			if err != nil {
				return 0, err
			}
			return v & mask, nil
		})

	case ir.OpStore:
		lv, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		lp, err := c.loader(in.Args[1])
		if err != nil {
			return step{}, err
		}
		size := in.Args[0].Type().Size()
		return step{exec: func(r *Runner, fr *frame) error {
			v := lv(fr)
			ptr := lp(fr)
			r.count()
			if err := r.mem.Write(ptr, size, v); err != nil {
				return err
			}
			fr.pc++
			return nil
		}}, nil
	}

	if in.Op.IsIntArith() {
		return c.compileIntArith(in)
	}
	if in.Op.IsFloatArith() {
		return c.compileFloatArith(in)
	}
	if cast, ok := castFn(c, in); ok {
		la, err := c.loader(in.Args[0])
		if err != nil {
			return step{}, err
		}
		return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
			return cast(la(fr)), nil
		})
	}
	return step{}, fmt.Errorf("op %s not compilable", in.Op)
}

// valueStep wraps a value computation with the retire/assign/advance
// tail shared by every result-producing instruction.
func (c *compiler) valueStep(in *ir.Instr, compute func(r *Runner, fr *frame) (uint64, error)) (step, error) {
	id := in.ID
	seq := in.Seq
	width := valueBits(in.Ty)
	mask := canonMask(in.Ty)
	target := in
	return step{exec: func(r *Runner, fr *frame) error {
		v, err := compute(r, fr)
		if err != nil {
			return err
		}
		v = r.retire(fr, target, seq, width, mask, v)
		fr.vals[id] = v
		fr.pc++
		return nil
	}}, nil
}

func (c *compiler) compileIntArith(in *ir.Instr) (step, error) {
	la, err := c.loader(in.Args[0])
	if err != nil {
		return step{}, err
	}
	lb, err := c.loader(in.Args[1])
	if err != nil {
		return step{}, err
	}
	mask := canonMask(in.Ty)
	shift := sxShift(in.Ty)
	sx := func(v uint64) int64 { return int64(v<<shift) >> shift }
	var fn func(a, b uint64) (uint64, error)
	switch in.Op {
	case ir.OpAdd:
		fn = func(a, b uint64) (uint64, error) { return (a + b) & mask, nil }
	case ir.OpSub:
		fn = func(a, b uint64) (uint64, error) { return (a - b) & mask, nil }
	case ir.OpMul:
		fn = func(a, b uint64) (uint64, error) { return (a * b) & mask, nil }
	case ir.OpSDiv:
		fn = func(a, b uint64) (uint64, error) {
			sa, sb := sx(a), sx(b)
			if sb == 0 || (sa == math.MinInt64 && sb == -1) {
				return 0, divideFault
			}
			return uint64(sa/sb) & mask, nil
		}
	case ir.OpSRem:
		fn = func(a, b uint64) (uint64, error) {
			sa, sb := sx(a), sx(b)
			if sb == 0 || (sa == math.MinInt64 && sb == -1) {
				return 0, divideFault
			}
			return uint64(sa%sb) & mask, nil
		}
	case ir.OpUDiv:
		fn = func(a, b uint64) (uint64, error) {
			if b == 0 {
				return 0, divideFault
			}
			return (a / b) & mask, nil
		}
	case ir.OpURem:
		fn = func(a, b uint64) (uint64, error) {
			if b == 0 {
				return 0, divideFault
			}
			return (a % b) & mask, nil
		}
	case ir.OpAnd:
		fn = func(a, b uint64) (uint64, error) { return (a & b) & mask, nil }
	case ir.OpOr:
		fn = func(a, b uint64) (uint64, error) { return (a | b) & mask, nil }
	case ir.OpXor:
		fn = func(a, b uint64) (uint64, error) { return (a ^ b) & mask, nil }
	case ir.OpShl:
		fn = func(a, b uint64) (uint64, error) { return (a << (b & 63)) & mask, nil }
	case ir.OpLShr:
		fn = func(a, b uint64) (uint64, error) { return (a >> (b & 63)) & mask, nil }
	case ir.OpAShr:
		fn = func(a, b uint64) (uint64, error) { return uint64(sx(a)>>(b&63)) & mask, nil }
	default:
		return step{}, fmt.Errorf("int-arith op %s not compilable", in.Op)
	}
	return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
		return fn(la(fr), lb(fr))
	})
}

func (c *compiler) compileFloatArith(in *ir.Instr) (step, error) {
	la, err := c.loader(in.Args[0])
	if err != nil {
		return step{}, err
	}
	lb, err := c.loader(in.Args[1])
	if err != nil {
		return step{}, err
	}
	var fn func(x, y float64) float64
	switch in.Op {
	case ir.OpFAdd:
		fn = func(x, y float64) float64 { return x + y }
	case ir.OpFSub:
		fn = func(x, y float64) float64 { return x - y }
	case ir.OpFMul:
		fn = func(x, y float64) float64 { return x * y }
	case ir.OpFDiv:
		fn = func(x, y float64) float64 { return x / y }
	default:
		return step{}, fmt.Errorf("float-arith op %s not compilable", in.Op)
	}
	return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
		return math.Float64bits(fn(math.Float64frombits(la(fr)), math.Float64frombits(lb(fr)))), nil
	})
}

// castFn pre-binds a cast's value transform; ok=false means the op is
// not a cast.
func castFn(c *compiler, in *ir.Instr) (func(uint64) uint64, bool) {
	mask := canonMask(in.Ty)
	srcShift := sxShift(in.Args[0].Type())
	sx := func(v uint64) int64 { return int64(v<<srcShift) >> srcShift }
	switch in.Op {
	case ir.OpTrunc, ir.OpZExt, ir.OpPtrToInt:
		return func(a uint64) uint64 { return a & mask }, true
	case ir.OpSExt:
		return func(a uint64) uint64 { return uint64(sx(a)) & mask }, true
	case ir.OpFPToSI:
		return func(a uint64) uint64 {
			f := math.Float64frombits(a)
			if math.IsNaN(f) {
				return 0
			}
			return uint64(int64(f)) & mask
		}, true
	case ir.OpSIToFP:
		return func(a uint64) uint64 {
			return math.Float64bits(float64(sx(a)))
		}, true
	case ir.OpIntToPtr, ir.OpBitcast:
		return func(a uint64) uint64 { return a }, true
	}
	return nil, false
}

func (c *compiler) compileGEP(in *ir.Instr) (step, error) {
	base, err := c.loader(in.Args[0])
	if err != nil {
		return step{}, err
	}
	type gepIdx struct {
		scale  uint64
		offset uint64
		load   loader // nil for constant struct offsets
		shift  uint
	}
	steps := c.prep.GEPSteps(in)
	plan := make([]gepIdx, len(steps))
	for i, s := range steps {
		if s.IsConst {
			plan[i] = gepIdx{offset: s.Offset}
			continue
		}
		ld, err := c.loader(in.Args[1+i])
		if err != nil {
			return step{}, err
		}
		plan[i] = gepIdx{scale: s.Scale, load: ld, shift: sxShift(in.Args[1+i].Type())}
	}
	return c.valueStep(in, func(r *Runner, fr *frame) (uint64, error) {
		addr := base(fr)
		for i := range plan {
			g := &plan[i]
			if g.load == nil {
				addr += g.offset
				continue
			}
			iv := g.load(fr)
			addr += uint64(int64(iv<<g.shift)>>g.shift) * g.scale
		}
		return addr, nil
	})
}

func (c *compiler) compileCall(in *ir.Instr) (step, error) {
	argLoaders, err := c.loaders(in.Args)
	if err != nil {
		return step{}, err
	}
	fin := &callFinish{
		in:        in,
		hasResult: in.HasResult(),
		seq:       in.Seq,
	}
	if fin.hasResult {
		fin.id = in.ID
		fin.width = valueBits(in.Ty)
		fin.mask = canonMask(in.Ty)
	}
	nargs := len(argLoaders)
	evalArgs := func(fr *frame) []uint64 {
		args := make([]uint64, nargs)
		for i, ld := range argLoaders {
			args[i] = ld(fr)
		}
		return args
	}
	if in.Callee != nil {
		if len(in.Callee.Blocks) == 0 {
			declErr := fmt.Errorf("call to declaration @%s", in.Callee.Name)
			return step{fin: fin, exec: func(r *Runner, fr *frame) error {
				evalArgs(fr)
				return declErr
			}}, nil
		}
		callee := in.Callee
		return step{fin: fin, exec: func(r *Runner, fr *frame) error {
			return r.pushFrame(r.cp.fns[callee], evalArgs(fr))
		}}, nil
	}
	builtin := in.Builtin
	return step{fin: fin, exec: func(r *Runner, fr *frame) error {
		v, err := rt.Call(r.env, builtin, evalArgs(fr))
		if err != nil {
			return err
		}
		return r.finishCall(fr, v)
	}}, nil
}

func icmpFn(p ir.Pred, shift uint) (func(a, b uint64) bool, error) {
	sx := func(v uint64) int64 { return int64(v<<shift) >> shift }
	switch p {
	case ir.PredEQ:
		return func(a, b uint64) bool { return a == b }, nil
	case ir.PredNE:
		return func(a, b uint64) bool { return a != b }, nil
	case ir.PredLT:
		return func(a, b uint64) bool { return sx(a) < sx(b) }, nil
	case ir.PredLE:
		return func(a, b uint64) bool { return sx(a) <= sx(b) }, nil
	case ir.PredGT:
		return func(a, b uint64) bool { return sx(a) > sx(b) }, nil
	case ir.PredGE:
		return func(a, b uint64) bool { return sx(a) >= sx(b) }, nil
	case ir.PredULT:
		return func(a, b uint64) bool { return a < b }, nil
	case ir.PredULE:
		return func(a, b uint64) bool { return a <= b }, nil
	case ir.PredUGT:
		return func(a, b uint64) bool { return a > b }, nil
	case ir.PredUGE:
		return func(a, b uint64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("icmp pred %v not compilable", p)
	}
}

func fcmpFn(p ir.Pred) (func(a, b float64) bool, error) {
	switch p {
	case ir.PredEQ:
		return func(a, b float64) bool { return a == b }, nil
	case ir.PredNE:
		return func(a, b float64) bool { return a != b }, nil
	case ir.PredLT:
		return func(a, b float64) bool { return a < b }, nil
	case ir.PredLE:
		return func(a, b float64) bool { return a <= b }, nil
	case ir.PredGT:
		return func(a, b float64) bool { return a > b }, nil
	case ir.PredGE:
		return func(a, b float64) bool { return a >= b }, nil
	default:
		return nil, fmt.Errorf("fcmp pred %v not compilable", p)
	}
}

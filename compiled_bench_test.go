// Benchmarks and the BENCH_compiled.json emitter for the compiled
// execution engines. BenchmarkCampaignCompiled times a whole campaign
// cell with the engines off and on; TestWriteCompiledBench measures
// interpreter-vs-compiled attempt latency at both levels, writes the
// JSON artifact, and gates the 1.5x performance contract.
//
//	go test -bench=BenchmarkCampaignCompiled -benchtime=5x
//	HLFI_BENCH_COMPILED=BENCH_compiled.json go test -run '^TestWriteCompiledBench$'
package hlfi_test

import (
	"os"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/core"
	"hlfi/internal/fault"
)

// BenchmarkCampaignCompiled runs a whole campaign cell with the compiled
// engines off ("off") and on ("on"). This includes the golden profiling
// run and the one-time engine compile, so it reports the net
// campaign-level win.
func BenchmarkCampaignCompiled(b *testing.B) {
	p := replayBenchProgram(b)
	n := injectionsPerCell()
	arm := func(compiled bool) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := &core.Campaign{
					Prog: p, Level: fault.LevelIR, Category: fault.CatAll,
					N: n, Seed: int64(i) + 1,
				}
				if compiled {
					c.Compiled = &core.CompiledConfig{}
				}
				if _, err := c.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "injections/op")
		}
	}
	b.Run("off", arm(false))
	b.Run("on", arm(true))
}

// TestWriteCompiledBench emits BENCH_compiled.json: set
// HLFI_BENCH_COMPILED to the output path (as `make bench` does) or the
// test skips. It also gates the engines' performance contract: the
// compiled IR engine must be at least 1.5x faster per attempt than the
// interpreter (the BenchmarkInjectionAttempt full-vs-compiled shape).
func TestWriteCompiledBench(t *testing.T) {
	path := os.Getenv("HLFI_BENCH_COMPILED")
	if path == "" {
		t.Skip("set HLFI_BENCH_COMPILED=<path> to write the compiled benchmark JSON")
	}
	m, err := bench.MeasureCompiled("quantumm", injectionsPerCell(), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	t.Log(m.String())
	if m.IR.Speedup < 1.5 {
		t.Errorf("compiled IR speedup %.2fx is below the 1.5x contract", m.IR.Speedup)
	}
}

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each bench regenerates its artifact and reports it via b.Log, plus
// domain metrics via b.ReportMetric (injections/op, instructions/run).
// The paper's sample size is 1000 injections per cell; the benches
// default to a faster setting and honour HLFI_N for paper-scale runs:
//
//	HLFI_N=1000 go test -bench=BenchmarkFigure3 -benchtime=1x
package hlfi_test

import (
	"os"
	"strconv"
	"testing"

	"hlfi/internal/bench"
	"hlfi/internal/codegen"
	"hlfi/internal/core"
	"hlfi/internal/fault"
	"hlfi/internal/telemetry"
)

// injectionsPerCell reads HLFI_N (default 200).
func injectionsPerCell() int {
	if s := os.Getenv("HLFI_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 200
}

// buildAll compiles the six benchmarks once per process.
var programsCache []*core.Program

func allPrograms(b *testing.B) []*core.Program {
	b.Helper()
	if programsCache == nil {
		progs, err := bench.BuildAll()
		if err != nil {
			b.Fatal(err)
		}
		programsCache = progs
	}
	return programsCache
}

// BenchmarkFigure3 regenerates the aggregate crash/SDC/benign breakdown
// (LLFI vs PINFI, category "all") for all six benchmarks.
func BenchmarkFigure3(b *testing.B) {
	progs := allPrograms(b)
	n := injectionsPerCell()
	for i := 0; i < b.N; i++ {
		st, err := core.RunStudy(core.StudyConfig{
			Programs:   progs,
			N:          n,
			Seed:       1,
			Categories: []fault.Category{fault.CatAll},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + st.RenderFigure3())
		}
	}
	b.ReportMetric(float64(n*len(progs)*2), "injections/op")
}

// BenchmarkTableIV regenerates the dynamic candidate-instruction counts
// per category for both tools (profiling only, no injections).
func BenchmarkTableIV(b *testing.B) {
	progs := allPrograms(b)
	for i := 0; i < b.N; i++ {
		st, err := core.RunStudy(core.StudyConfig{
			Programs:   progs,
			N:          1,
			Seed:       1,
			Categories: []fault.Category{fault.CatAll},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + st.RenderTableIV())
		}
	}
}

// BenchmarkFigure4 regenerates the per-category SDC comparison with 95%
// confidence intervals (subfigures a-e), and BenchmarkTableV the crash
// percentages; both need the full category cross-product, so they share
// one study per run.
func BenchmarkFigure4(b *testing.B) {
	progs := allPrograms(b)
	n := injectionsPerCell()
	for i := 0; i < b.N; i++ {
		st, err := core.RunStudy(core.StudyConfig{Programs: progs, N: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + st.RenderFigure4())
		}
	}
	b.ReportMetric(float64(n*len(progs)*2*len(fault.Categories)), "injections/op")
}

// BenchmarkTableV regenerates the crash-percentage table.
func BenchmarkTableV(b *testing.B) {
	progs := allPrograms(b)
	n := injectionsPerCell()
	for i := 0; i < b.N; i++ {
		st, err := core.RunStudy(core.StudyConfig{Programs: progs, N: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + st.RenderTableV())
			b.Log("\n" + st.RenderSummary())
		}
	}
	b.ReportMetric(float64(n*len(progs)*2*len(fault.Categories)), "injections/op")
}

// BenchmarkStudyScheduler compares the serial study path against the
// cell-level scheduler on the full 60-cell cross-product. Both arms run
// the identical per-cell sequential streams (Workers=1), so the results
// are byte-identical and the benchmark isolates pure scheduling: on a
// multi-core box the parallel arm's ns/op drops roughly with
// min(4, GOMAXPROCS). The telemetry aggregator rides along and reports
// aggregate throughput on the last iteration.
func BenchmarkStudyScheduler(b *testing.B) {
	progs := allPrograms(b)
	n := injectionsPerCell() / 4
	if n < 10 {
		n = 10
	}
	for _, arm := range []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{"parallel4", 4},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg := telemetry.NewAggregator()
				st, err := core.RunStudy(core.StudyConfig{
					Programs: progs,
					N:        n,
					Seed:     1,
					Parallel: arm.parallel,
					Events:   agg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(st.Cells) == 0 {
					b.Fatal("empty study")
				}
				if i == b.N-1 {
					b.Log("\n" + agg.RenderTelemetry())
					b.ReportMetric(agg.Throughput(), "injections/sec")
				}
			}
		})
	}
}

// benchOneCell runs a single campaign cell, for per-benchmark/per-level
// microbenchmarks of the injection machinery itself.
func benchOneCell(b *testing.B, name string, level fault.Level, cat fault.Category) {
	p, err := bench.Build(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &core.Campaign{Prog: p, Level: level, Category: cat, N: 25, Seed: int64(i)}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(25, "injections/op")
}

// BenchmarkInjectionLLFI measures IR-level injection campaign throughput.
func BenchmarkInjectionLLFI(b *testing.B) {
	benchOneCell(b, "quantumm", fault.LevelIR, fault.CatAll)
}

// BenchmarkInjectionPINFI measures assembly-level campaign throughput.
func BenchmarkInjectionPINFI(b *testing.B) {
	benchOneCell(b, "quantumm", fault.LevelASM, fault.CatAll)
}

// BenchmarkAblationGEPFolding quantifies discrepancy source #1 from the
// paper's §VII: with GEP→addressing-mode folding disabled, the assembly
// level gains explicit address arithmetic and the Table IV arithmetic
// asymmetry widens.
func BenchmarkAblationGEPFolding(b *testing.B) {
	bm, err := bench.ByName("bzip2m")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		folded, err := core.BuildProgramWithOptions("fold", bm.Source, codegen.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		unfolded, err := core.BuildProgramWithOptions("nofold", bm.Source,
			codegen.Options{FoldGEP: false, FoldLoad: true, FuseCmpBranch: true})
		if err != nil {
			b.Fatal(err)
		}
		fArith, err := core.DynCount(folded, fault.LevelASM, fault.CatArith)
		if err != nil {
			b.Fatal(err)
		}
		uArith, err := core.DynCount(unfolded, fault.LevelASM, fault.CatArith)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("bzip2m PINFI dynamic arithmetic: folding on=%d, off=%d (+%.0f%%)",
				fArith, uArith, 100*float64(uArith-fArith)/float64(fArith))
			if uArith <= fArith {
				b.Fatal("ablation had no effect")
			}
		}
	}
}

// BenchmarkAblationLoadFolding quantifies discrepancy source #3 (mov
// asymmetry): with load-operand folding disabled, the assembly level
// gains standalone load instructions.
func BenchmarkAblationLoadFolding(b *testing.B) {
	bm, err := bench.ByName("hmmerm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		folded, err := core.BuildProgramWithOptions("fold", bm.Source, codegen.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		unfolded, err := core.BuildProgramWithOptions("nofold", bm.Source,
			codegen.Options{FoldGEP: true, FoldLoad: false, FuseCmpBranch: true})
		if err != nil {
			b.Fatal(err)
		}
		fLoad, err := core.DynCount(folded, fault.LevelASM, fault.CatLoad)
		if err != nil {
			b.Fatal(err)
		}
		uLoad, err := core.DynCount(unfolded, fault.LevelASM, fault.CatLoad)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("hmmerm PINFI dynamic loads: folding on=%d, off=%d (+%.0f%%)",
				fLoad, uLoad, 100*float64(uLoad-fLoad)/float64(fLoad))
			if uLoad <= fLoad {
				b.Fatal("ablation had no effect")
			}
		}
	}
}

// BenchmarkAblationCmpFusion quantifies compare+branch fusion. Without
// fusion every branch condition is materialized with SETcc and re-tested
// (TEST+Jcc), so the cmp category survives (TEST is still a flag setter
// before a Jcc) but the destination-register instruction stream grows.
func BenchmarkAblationCmpFusion(b *testing.B) {
	bm, err := bench.ByName("mcfm")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		fused, err := core.BuildProgramWithOptions("fuse", bm.Source, codegen.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		unfused, err := core.BuildProgramWithOptions("nofuse", bm.Source,
			codegen.Options{FoldGEP: true, FoldLoad: true, FuseCmpBranch: false})
		if err != nil {
			b.Fatal(err)
		}
		fAll, err := core.DynCount(fused, fault.LevelASM, fault.CatAll)
		if err != nil {
			b.Fatal(err)
		}
		uAll, err := core.DynCount(unfused, fault.LevelASM, fault.CatAll)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("mcfm PINFI 'all' candidates: fusion on=%d, off=%d (+%.0f%%)",
				fAll, uAll, 100*float64(uAll-fAll)/float64(fAll))
			if uAll <= fAll {
				b.Fatal("unfusing should grow the destination-register stream")
			}
		}
	}
}

// BenchmarkGoldenRuns measures raw simulator throughput for each
// benchmark at both levels (instructions per second appear as the
// instrs/op metric divided by ns/op).
func BenchmarkGoldenRuns(b *testing.B) {
	for _, p := range allPrograms(b) {
		p := p
		b.Run(p.Name+"/IR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DynCount(p, fault.LevelIR, fault.CatAll); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.IRInstrs), "instrs/op")
		})
		b.Run(p.Name+"/ASM", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DynCount(p, fault.LevelASM, fault.CatAll); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(p.AsmInstrs), "instrs/op")
		})
	}
}

// BenchmarkCalibration runs the §VII future-work experiment on one
// benchmark: plain LLFI vs calibrated LLFI vs PINFI crash rates. The
// calibrated gap must not exceed the plain gap.
func BenchmarkCalibration(b *testing.B) {
	p, err := bench.Build("quantumm")
	if err != nil {
		b.Fatal(err)
	}
	n := injectionsPerCell()
	for i := 0; i < b.N; i++ {
		st, err := core.RunCalibrationStudy([]*core.Program{p}, n, 42, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + st.Render())
			plain, cal := st.MeanGaps()
			if cal > plain+1 {
				b.Fatalf("calibration widened the crash gap: %.1f -> %.1f", plain, cal)
			}
		}
	}
}
